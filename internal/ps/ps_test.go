package ps

import (
	"io"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"prophet/internal/transport"
)

// newCluster spins up a server plus W clients over in-memory pipes.
func newCluster(t *testing.T, workers int) (*Server, []*Client, func()) {
	t.Helper()
	srv := NewServer(workers)
	clients := make([]*Client, workers)
	serverEnds := make([]net.Conn, workers)
	for w := 0; w < workers; w++ {
		a, b := transport.Pipe(0, 0)
		serverEnds[w] = b
		clients[w] = NewClient(a)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(serverEnds) }()
	cleanup := func() {
		for _, c := range clients {
			c.Close()
		}
		for _, s := range serverEnds {
			s.Close()
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	return srv, clients, cleanup
}

func TestPushPullSingleWorker(t *testing.T) {
	_, clients, cleanup := newCluster(t, 1)
	defer cleanup()
	if err := clients[0].Push(0, 5, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := clients[0].Pull(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestAggregationIsMean(t *testing.T) {
	_, clients, cleanup := newCluster(t, 3)
	defer cleanup()
	var wg sync.WaitGroup
	for w, v := range []float64{1, 2, 6} {
		wg.Add(1)
		go func(w int, v float64) {
			defer wg.Done()
			if err := clients[w].Push(0, 0, []float64{v}); err != nil {
				t.Error(err)
			}
		}(w, v)
	}
	wg.Wait()
	got, err := clients[0].Pull(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-3) > 1e-15 {
		t.Fatalf("mean = %v, want 3", got[0])
	}
}

func TestPullBlocksUntilAllPushed(t *testing.T) {
	_, clients, cleanup := newCluster(t, 2)
	defer cleanup()
	if err := clients[0].Push(0, 0, []float64{10}); err != nil {
		t.Fatal(err)
	}
	got := make(chan []float64, 1)
	go func() {
		v, err := clients[0].Pull(0, 0)
		if err != nil {
			t.Error(err)
		}
		got <- v
	}()
	select {
	case <-got:
		t.Fatal("pull completed before all workers pushed")
	default:
	}
	if err := clients[1].Push(0, 0, []float64{20}); err != nil {
		t.Fatal(err)
	}
	v := <-got
	if v[0] != 15 {
		t.Fatalf("got %v", v)
	}
}

func TestIterationsAreIndependent(t *testing.T) {
	_, clients, cleanup := newCluster(t, 1)
	defer cleanup()
	clients[0].Push(0, 0, []float64{1})
	clients[0].Push(1, 0, []float64{2})
	v0, _ := clients[0].Pull(0, 0)
	v1, _ := clients[0].Pull(1, 0)
	if v0[0] != 1 || v1[0] != 2 {
		t.Fatalf("v0=%v v1=%v", v0, v1)
	}
}

func TestManyTensorsConcurrently(t *testing.T) {
	const workers = 3
	const tensors = 20
	_, clients, cleanup := newCluster(t, workers)
	defer cleanup()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for tix := 0; tix < tensors; tix++ {
				if err := clients[w].Push(0, tix, []float64{float64(tix), float64(w)}); err != nil {
					t.Error(err)
					return
				}
			}
			for tix := tensors - 1; tix >= 0; tix-- {
				v, err := clients[w].Pull(0, tix)
				if err != nil {
					t.Error(err)
					return
				}
				if v[0] != float64(tix) || v[1] != 1 { // mean of 0,1,2
					t.Errorf("tensor %d = %v", tix, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDeterministicAggregationOrder(t *testing.T) {
	// Floating-point sums depend on order; the server must sum in worker
	// order, so adversarial arrival orders give identical bits.
	vals := []float64{1e-16, 1.0, -1.0}
	run := func(order []int) float64 {
		_, clients, cleanup := newCluster(t, 3)
		defer cleanup()
		for _, w := range order {
			if err := clients[w].Push(0, 0, []float64{vals[w]}); err != nil {
				t.Fatal(err)
			}
		}
		v, err := clients[0].Pull(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return v[0]
	}
	a := run([]int{0, 1, 2})
	b := run([]int{2, 1, 0})
	if a != b {
		t.Fatalf("aggregation depends on arrival order: %v vs %v", a, b)
	}
}

func TestDoublePushRejected(t *testing.T) {
	srv := NewServer(1)
	a, b := transport.Pipe(0, 0)
	client := NewClient(a)
	done := make(chan error, 1)
	go func() { done <- srv.Serve([]net.Conn{b}) }()
	client.Push(0, 0, []float64{1})
	client.Push(0, 0, []float64{2})
	err := <-done
	if err == nil {
		t.Fatal("double push not rejected")
	}
	client.Close()
	b.Close()
}

func TestServerStats(t *testing.T) {
	srv, clients, cleanup := newCluster(t, 1)
	defer cleanup()
	clients[0].Push(0, 0, []float64{1})
	if _, err := clients[0].Pull(0, 0); err != nil {
		t.Fatal(err)
	}
	pushes, pulls := srv.Stats()
	if pushes != 1 || pulls != 1 {
		t.Fatalf("stats = %d, %d", pushes, pulls)
	}
}

func TestServeWrongConnCount(t *testing.T) {
	srv := NewServer(2)
	if err := srv.Serve(nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestNewServerZeroWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewServer(0)
}

func TestDuplicatePullRejected(t *testing.T) {
	// No server: the far end just discards, so the first pull stays
	// pending and the second must be rejected as a duplicate.
	a, b := transport.Pipe(0, 0)
	go io.Copy(io.Discard, b)
	c := NewClient(a)
	go c.Pull(0, 0) // parks forever; released by Close below
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		n := len(c.pending)
		c.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first pull never registered")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Pull(0, 0); err == nil {
		t.Fatal("duplicate pull not rejected")
	}
	c.Close()
	b.Close()
}
