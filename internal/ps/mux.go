package ps

// Multiplexed transport for the parameter server: N logical workers share
// ONE physical connection in each direction instead of owning a socket and
// two goroutines apiece.
//
// Server side, ServeMux runs the demux loop on the caller's goroutine and
// one responder goroutine that owns all writes (pull responses and credit
// grants) — two goroutines per physical connection regardless of how many
// workers it carries. Client side, a MuxGroup owns one demux goroutine and
// the transport's credit granter, and hands out per-worker MuxWorker
// handles that implement the same WorkerLink surface as *Client.
//
// Frames are tagged with a stream id equal to the worker's position in the
// ServeMux ids slice (the MuxGroup uses worker id == stream id directly),
// and per-stream flow-control credit keeps one worker's burst from running
// unboundedly ahead of the demux loop. Pooled payloads survive end-to-end:
// the demux borrows from the shared payload pool, handlers decode into the
// float pool, and MuxConn.Done returns the wire bytes.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"prophet/internal/probe"
	"prophet/internal/transport"
)

// respSink routes a worker's pull responses to the goroutine that owns its
// connection's writes (a mux responder), instead of a per-response
// goroutine.
type respSink interface {
	enqueueResp(w int, k slotKey)
}

// ServeMux serves the given logical workers from one multiplexed
// connection: frames on stream i belong to worker ids[i]. It blocks until
// the connection closes, running the demux loop itself plus exactly one
// responder goroutine, and returns the joined mid-stream failures of the
// workers it carried (dropped workers' failures are suppressed, like
// Serve).
func (s *Server) ServeMux(conn net.Conn, ids []int) error {
	if len(ids) == 0 {
		return errors.New("ps: ServeMux with no workers")
	}
	for _, w := range ids {
		if w < 0 || w >= s.workers {
			return fmt.Errorf("ps: no worker %d", w)
		}
	}
	mc := transport.NewMuxConn(conn, transport.MuxOptions{Streams: len(ids), Pool: payloads})
	r := &muxResponder{
		s:      s,
		mc:     mc,
		ids:    ids,
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	s.mu.Lock()
	for _, w := range ids {
		s.sinks[w] = r
	}
	s.mu.Unlock()
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		r.loop()
	}()

	// Demux loop: the only reader of mc. Handlers aggregate inline; their
	// responses go through the responder, so this loop never writes.
	var (
		failWorker = -1 // worker whose frame produced a handler error
		connErr    error
	)
	for {
		stream, f, err := mc.Read()
		if err != nil {
			if !isCleanClose(err) {
				connErr = fmt.Errorf("read frame: %w", err)
			}
			break
		}
		w := ids[stream]
		if s.IsDropped(w) {
			mc.Done(stream, f)
			continue
		}
		var herr error
		switch f.Type {
		case transport.Push:
			herr = s.handlePush(w, f)
		case transport.PullReq:
			herr = s.handlePull(w, f)
		default:
			herr = fmt.Errorf("unexpected frame type %v", f.Type)
		}
		mc.Done(stream, f)
		if herr != nil {
			failWorker, connErr = w, herr
			break
		}
	}

	// Teardown: close the conn first — the responder may be parked inside a
	// credit reservation and only a close wakes it — then wait for it and
	// unhook the sinks.
	close(r.stop)
	mc.Close()
	rwg.Wait()
	s.mu.Lock()
	for _, w := range ids {
		if s.sinks[w] == r {
			s.sinks[w] = nil
		}
	}
	s.mu.Unlock()

	if connErr != nil {
		if failWorker >= 0 {
			// A protocol violation by one worker tears down the shared
			// connection; only the offender is attributed.
			s.workerFailed(failWorker, connErr)
		} else {
			for _, w := range ids {
				s.workerFailed(w, connErr)
			}
		}
	}
	return s.collectErrorsFor(ids)
}

// collectErrorsFor joins the failures of the given workers, skipping
// dropped ones — ServeMux's per-connection slice of collectErrors.
func (s *Server) collectErrorsFor(ids []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	for _, w := range ids {
		if err := s.workerErrs[w]; err != nil && !s.dead[w] {
			errs = append(errs, &WorkerError{Worker: w, Err: err})
		}
	}
	return errors.Join(errs...)
}

type respJob struct {
	w int
	k slotKey
}

// muxResponder is the single writer goroutine of a ServeMux connection: it
// flushes credit grants accumulated by the demux loop and writes queued
// pull responses, keeping the server at two goroutines per physical conn.
type muxResponder struct {
	s   *Server
	mc  *transport.MuxConn
	ids []int

	mu    sync.Mutex
	queue []respJob
	spare []respJob // swap buffer: drained queues are reused, not reallocated

	notify chan struct{}
	stop   chan struct{}
}

// enqueueResp implements respSink.
func (r *muxResponder) enqueueResp(w int, k slotKey) {
	r.mu.Lock()
	r.queue = append(r.queue, respJob{w, k})
	r.mu.Unlock()
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

func (r *muxResponder) loop() {
	for {
		select {
		case <-r.stop:
			return
		case <-r.notify:
		case <-r.mc.GrantC():
		}
		if r.mc.FlushGrants() != nil {
			// Conn broken: the demux loop observes the same failure; just
			// stop writing.
			return
		}
		for {
			// Swap queue and spare under the lock, and only when non-empty:
			// swapping on an empty take would leave both fields aliased to
			// one array, letting concurrent enqueues overwrite a jobs slice
			// mid-iteration.
			r.mu.Lock()
			if len(r.queue) == 0 {
				r.mu.Unlock()
				break
			}
			jobs := r.queue
			r.queue = r.spare[:0]
			r.spare = jobs
			r.mu.Unlock()
			for _, j := range jobs {
				if err := r.respond(j.w, j.k); err != nil {
					// A mux write failure poisons the shared connection:
					// close it so the demux loop (and every sender) unwinds.
					r.s.workerFailed(j.w, fmt.Errorf("write pull response: %w", err))
					r.mc.Close()
					return
				}
			}
		}
	}
}

// respond writes one queued pull response on the worker's stream.
func (r *muxResponder) respond(w int, k slotKey) error {
	mean := r.s.meanFor(w, k)
	if mean == nil {
		return nil // collected, not aggregated yet, or worker dropped
	}
	stream := -1
	for i, id := range r.ids {
		if id == w {
			stream = i
			break
		}
	}
	if stream < 0 {
		// Sinks are registered per id, so this is unreachable today; fail
		// loudly rather than misdelivering the response on stream 0.
		return fmt.Errorf("ps: worker %d is not on this mux connection", w)
	}
	werr := r.mc.SendFloats(uint32(stream), transport.PullResp, k.iter, k.tensor, mean)
	return r.s.finishRespond(w, k, werr)
}

// MuxGroupOptions configures the client half of a multiplexed connection.
// Redial is deliberately absent: a mux conn is shared by every in-process
// worker, so reconnect policy belongs to whoever owns the group.
type MuxGroupOptions struct {
	// PullTimeout bounds each MuxWorker.Pull (0 = wait forever).
	PullTimeout time.Duration
	// Metrics, when non-nil, counts pull timeouts and lost connections
	// under the ps_client_* names (shared by all workers of the group).
	Metrics *probe.Metrics
}

// MuxGroup is the client side of one multiplexed connection: `workers`
// logical clients (stream id == worker index within the group) behind a
// single demux goroutine. Obtain per-worker handles with Worker.
type MuxGroup struct {
	mc      *transport.MuxConn
	opts    MuxGroupOptions
	workers []*MuxWorker
	done    chan struct{}

	mTimeouts, mConnLost *probe.Counter
}

// NewMuxGroup wraps conn (the peer must be a Server.ServeMux with the same
// worker count) and starts the demux goroutine.
func NewMuxGroup(conn net.Conn, workers int, opts MuxGroupOptions) *MuxGroup {
	if workers <= 0 {
		panic("ps: NewMuxGroup needs at least one worker")
	}
	g := &MuxGroup{
		mc:      transport.NewMuxConn(conn, transport.MuxOptions{Streams: workers, Pool: payloads, AutoGrant: true}),
		opts:    opts,
		workers: make([]*MuxWorker, workers),
		done:    make(chan struct{}),
	}
	if m := opts.Metrics; m != nil {
		g.mTimeouts = m.Counter("ps_client_pull_timeouts")
		g.mConnLost = m.Counter("ps_client_conn_lost")
	}
	for w := range g.workers {
		g.workers[w] = &MuxWorker{
			g:       g,
			stream:  uint32(w),
			pending: make(map[slotKey]chan PullResult),
		}
	}
	go g.readLoop()
	return g
}

// Worker returns the handle for logical worker w (0 ≤ w < workers).
func (g *MuxGroup) Worker(w int) *MuxWorker { return g.workers[w] }

// Close tears down the shared connection, failing every worker's pending
// pulls, and waits for the demux goroutine to exit.
func (g *MuxGroup) Close() error {
	err := g.mc.Close()
	<-g.done
	return err
}

func (g *MuxGroup) readLoop() {
	defer close(g.done)
	for {
		stream, f, err := g.mc.Read()
		if err != nil {
			// Close the mux before failing the waiters (idempotent): a
			// sender parked in a credit reservation only wakes on close or
			// an incoming grant, and no grant will ever arrive on a dead
			// connection — without the close, a worker blocked mid-
			// SendBatch would hang forever even after the run aborts.
			g.mc.Close()
			lost := fmt.Errorf("%w: %v", ErrConnLost, err)
			if g.mConnLost != nil && !isCleanClose(err) {
				g.mConnLost.Inc()
			}
			for _, mw := range g.workers {
				mw.failPending(lost)
			}
			return
		}
		g.workers[stream].deliver(f)
		g.mc.Done(stream, f)
	}
}

// MuxWorker is one logical worker's view of a MuxGroup — the mux
// counterpart of *Client, sharing the group's connection and demux
// goroutine. It implements WorkerLink.
type MuxWorker struct {
	g      *MuxGroup
	stream uint32

	mu      sync.Mutex
	pending map[slotKey]chan PullResult
	readErr error
	closed  bool
}

// deliver routes one demuxed frame; the payload is decoded before the
// caller recycles the wire bytes.
func (mw *MuxWorker) deliver(f *transport.Frame) {
	if f.Type != transport.PullResp {
		return
	}
	k := slotKey{f.Iter, f.Tensor}
	mw.mu.Lock()
	ch, ok := mw.pending[k]
	if ok {
		delete(mw.pending, k)
	}
	mw.mu.Unlock()
	if !ok {
		return
	}
	n, derr := transport.FloatCount(f.Payload)
	if derr != nil {
		ch <- PullResult{Err: fmt.Errorf("ps: pull response for iter %d tensor %d: %w", f.Iter, f.Tensor, derr)}
		return
	}
	data := floats.get(n)
	transport.DecodeFloatsInto(data, f.Payload)
	ch <- PullResult{Data: data}
}

// failPending fails every registered pull with err and latches it for
// future registrations.
func (mw *MuxWorker) failPending(err error) {
	mw.mu.Lock()
	if mw.readErr == nil {
		mw.readErr = err
	}
	for _, ch := range mw.pending {
		ch <- PullResult{Err: err}
	}
	mw.pending = make(map[slotKey]chan PullResult)
	mw.mu.Unlock()
}

func (mw *MuxWorker) register(k slotKey) (chan PullResult, error) {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	if mw.closed {
		return nil, net.ErrClosed
	}
	if mw.readErr != nil {
		return nil, mw.readErr
	}
	if _, dup := mw.pending[k]; dup {
		return nil, fmt.Errorf("ps: duplicate pull for iter %d tensor %d", k.iter, k.tensor)
	}
	ch := make(chan PullResult, 1)
	mw.pending[k] = ch
	return ch, nil
}

func (mw *MuxWorker) deregister(k slotKey) {
	mw.mu.Lock()
	delete(mw.pending, k)
	mw.mu.Unlock()
}

// Push sends a gradient tensor on this worker's stream. A closed worker's
// stream rejects the push: the shared connection is still live, and a
// stray push would count toward the server's per-iteration aggregation.
func (mw *MuxWorker) Push(iter, tensor int, data []float64) error {
	mw.mu.Lock()
	closed := mw.closed
	mw.mu.Unlock()
	if closed {
		return net.ErrClosed
	}
	return mw.g.mc.SendFloats(mw.stream, transport.Push, uint32(iter), uint32(tensor), data)
}

// PullAsync issues a pull request and returns the result channel.
func (mw *MuxWorker) PullAsync(iter, tensor int) (<-chan PullResult, error) {
	k := slotKey{uint32(iter), uint32(tensor)}
	ch, err := mw.register(k)
	if err != nil {
		return nil, err
	}
	if err := mw.g.mc.SendFrame(mw.stream, &transport.Frame{Type: transport.PullReq, Iter: k.iter, Tensor: k.tensor}); err != nil {
		mw.deregister(k)
		return nil, fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	return ch, nil
}

// PushPullBatch stages every tensor's push and pull request as one mux
// batch: a single credit reservation and a single write on the shared
// connection, interleaved by stream with other workers' batches. Semantics
// match Client.PushPullBatch (channels delivered before any byte moves,
// all-or-nothing registration).
func (mw *MuxWorker) PushPullBatch(iter int, tensors []int, grad func(tensor int) []float64, res func(tensor int, ch <-chan PullResult)) error {
	nreg := 0
	var err error
	for _, t := range tensors {
		k := slotKey{uint32(iter), uint32(t)}
		ch, rerr := mw.register(k)
		if rerr != nil {
			err = rerr
			break
		}
		nreg++
		res(t, ch)
	}
	if err == nil {
		b := mw.g.mc.NewBatch(mw.stream)
		for _, t := range tensors {
			if err = b.AppendFloats(transport.Push, uint32(iter), uint32(t), grad(t)); err != nil {
				break
			}
			if err = b.AppendFrame(&transport.Frame{Type: transport.PullReq, Iter: uint32(iter), Tensor: uint32(t)}); err != nil {
				break
			}
		}
		if err == nil {
			if err = mw.g.mc.SendBatch(b); err != nil {
				err = fmt.Errorf("%w: %v", ErrConnLost, err)
			}
		} else {
			mw.g.mc.PutBatch(b)
		}
	}
	if err != nil {
		for i := 0; i < nreg; i++ {
			mw.deregister(slotKey{uint32(iter), uint32(tensors[i])})
		}
		return err
	}
	return nil
}

// Pull issues a pull and waits for the result, bounded by the group's
// PullTimeout. No redial: mux connections don't reconnect.
func (mw *MuxWorker) Pull(iter, tensor int) ([]float64, error) {
	ch, err := mw.PullAsync(iter, tensor)
	if err != nil {
		return nil, err
	}
	var timeoutC <-chan time.Time
	if d := mw.g.opts.PullTimeout; d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case r := <-ch:
		return r.Data, r.Err
	case <-timeoutC:
		mw.deregister(slotKey{uint32(iter), uint32(tensor)})
		if mw.g.mTimeouts != nil {
			mw.g.mTimeouts.Inc()
		}
		return nil, fmt.Errorf("ps: pull iter %d tensor %d: %w after %v", iter, tensor, ErrPullTimeout, mw.g.opts.PullTimeout)
	}
}

// Recycle hands a pull result's buffer back to the gradient pool.
func (mw *MuxWorker) Recycle(data []float64) { floats.put(data) }

// Close is worker-local: it fails this worker's pending pulls and rejects
// new pulls and pushes, leaving the shared connection (and the group's
// other workers) untouched. Close the MuxGroup to tear down the
// connection itself.
func (mw *MuxWorker) Close() error {
	mw.mu.Lock()
	if mw.closed {
		mw.mu.Unlock()
		return nil
	}
	mw.closed = true
	for _, ch := range mw.pending {
		ch <- PullResult{Err: net.ErrClosed}
	}
	mw.pending = make(map[slotKey]chan PullResult)
	mw.mu.Unlock()
	return nil
}
