package ps

import (
	"net"
	"testing"
)

// benchGrad is one tensor's gradient for the round-trip benches.
var benchGrad = func() []float64 {
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = float64(i)
	}
	return xs
}()

// BenchmarkPS_PushPull measures a full single-worker round trip over an
// in-memory pipe — push, pull request, aggregate, response, decode — with
// the pulled buffer recycled each iteration.
func BenchmarkPS_PushPull(b *testing.B) {
	s := NewServer(1)
	sc, cc := net.Pipe()
	go s.Serve([]net.Conn{sc})
	c := NewClient(cc)
	defer c.Close()
	b.SetBytes(int64(2 * 8 * len(benchGrad)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.Push(i, 0, benchGrad); err != nil {
			b.Fatal(err)
		}
		ch, err := c.PullAsync(i, 0)
		if err != nil {
			b.Fatal(err)
		}
		r := <-ch
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		c.Recycle(r.Data)
	}
}

// BenchmarkPS_PushPullBatch8 is the batched form: eight tensors' pushes
// and pull requests leave in one buffered write per iteration.
func BenchmarkPS_PushPullBatch8(b *testing.B) {
	const nt = 8
	s := NewServer(1)
	sc, cc := net.Pipe()
	go s.Serve([]net.Conn{sc})
	c := NewClient(cc)
	defer c.Close()
	tensors := make([]int, nt)
	for t := range tensors {
		tensors[t] = t
	}
	chans := make([]<-chan PullResult, nt)
	grad := func(tensor int) []float64 { return benchGrad }
	res := func(tensor int, ch <-chan PullResult) { chans[tensor] = ch }
	b.SetBytes(int64(nt * 2 * 8 * len(benchGrad)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.PushPullBatch(i, tensors, grad, res); err != nil {
			b.Fatal(err)
		}
		for _, ch := range chans {
			r := <-ch
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			c.Recycle(r.Data)
		}
	}
}
