package ps

import (
	"net"
	"sync"
	"testing"

	"prophet/internal/transport"
)

// newShardedCluster spins up one server per shard and W sharded clients
// routing tensor t to shard t % shards.
func newShardedCluster(t *testing.T, workers, shards int) ([]*Server, []*ShardedClient, func()) {
	t.Helper()
	of := func(tensor int) int { return tensor % shards }
	servers := make([]*Server, shards)
	perShardClients := make([][]*Client, shards)
	serveErr := make(chan error, shards)
	var allConns []net.Conn
	for s := 0; s < shards; s++ {
		servers[s] = NewServer(workers)
		ends := make([]net.Conn, workers)
		perShardClients[s] = make([]*Client, workers)
		for w := 0; w < workers; w++ {
			a, b := transport.Pipe(0, 0)
			ends[w] = b
			perShardClients[s][w] = NewClient(a)
			allConns = append(allConns, b)
		}
		go func(s int, ends []net.Conn) { serveErr <- servers[s].Serve(ends) }(s, ends)
	}
	clients := make([]*ShardedClient, workers)
	for w := 0; w < workers; w++ {
		cl := make([]*Client, shards)
		for s := 0; s < shards; s++ {
			cl[s] = perShardClients[s][w]
		}
		clients[w] = NewShardedClient(cl, of)
	}
	cleanup := func() {
		for _, c := range clients {
			c.Close()
		}
		for _, c := range allConns {
			c.Close()
		}
		for i := 0; i < shards; i++ {
			if err := <-serveErr; err != nil {
				t.Errorf("serve: %v", err)
			}
		}
	}
	return servers, clients, cleanup
}

func TestShardedPushPullAggregates(t *testing.T) {
	const workers, shards, tensors = 3, 2, 5
	servers, clients, cleanup := newShardedCluster(t, workers, shards)
	defer cleanup()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for tn := 0; tn < tensors; tn++ {
				if err := clients[w].Push(0, tn, []float64{float64(w + tn)}); err != nil {
					t.Errorf("worker %d push %d: %v", w, tn, err)
					return
				}
			}
			for tn := 0; tn < tensors; tn++ {
				got, err := clients[w].Pull(0, tn)
				if err != nil {
					t.Errorf("worker %d pull %d: %v", w, tn, err)
					return
				}
				want := (float64(0+tn) + float64(1+tn) + float64(2+tn)) / workers
				if len(got) != 1 || got[0] != want {
					t.Errorf("worker %d tensor %d: got %v want %v", w, tn, got, want)
				}
			}
		}(w)
	}
	wg.Wait()

	// Routing: shard s saw exactly the pushes for tensors with t%shards==s.
	wantPushes := []int{3 * workers, 2 * workers} // tensors 0,2,4 vs 1,3
	for s, srv := range servers {
		pushes, _ := srv.Stats()
		if pushes != wantPushes[s] {
			t.Errorf("shard %d handled %d pushes, want %d", s, pushes, wantPushes[s])
		}
	}
}

func TestShardedClientSingleShardNeedsNoMap(t *testing.T) {
	_, clients, cleanup := newCluster(t, 1)
	defer cleanup()
	sc := NewShardedClient([]*Client{clients[0]}, nil)
	if err := sc.Push(0, 7, []float64{4}); err != nil {
		t.Fatal(err)
	}
	got, err := sc.Pull(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestShardedClientRejectsBadMap(t *testing.T) {
	_, clients, cleanup := newCluster(t, 1)
	defer cleanup()
	sc := NewShardedClient([]*Client{clients[0]}, func(int) int { return 3 })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range shard")
		}
	}()
	sc.Push(0, 0, []float64{1})
}
