package ps

import (
	"errors"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"prophet/internal/transport"
)

// newMuxCluster starts a server with `workers` logical workers behind ONE
// multiplexed connection and returns the client group plus a shutdown
// func that reports ServeMux's error.
func newMuxCluster(t *testing.T, workers int) (*Server, *MuxGroup, func() error) {
	t.Helper()
	s := NewServer(workers)
	a, b := transport.Pipe(0, 0)
	ids := make([]int, workers)
	for w := range ids {
		ids[w] = w
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.ServeMux(b, ids) }()
	g := NewMuxGroup(a, workers, MuxGroupOptions{PullTimeout: 5 * time.Second})
	return s, g, func() error {
		g.Close()
		return <-serveErr
	}
}

func TestMuxPushPullAggregates(t *testing.T) {
	const workers = 3
	_, g, shutdown := newMuxCluster(t, workers)

	var wg sync.WaitGroup
	results := make([][]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			link := g.Worker(w)
			if err := link.Push(0, 0, []float64{float64(w), 2 * float64(w)}); err != nil {
				t.Errorf("worker %d push: %v", w, err)
				return
			}
			data, err := link.Pull(0, 0)
			if err != nil {
				t.Errorf("worker %d pull: %v", w, err)
				return
			}
			results[w] = data
		}(w)
	}
	wg.Wait()
	want := []float64{1, 2} // mean of {0,1,2} and {0,2,4}
	for w, got := range results {
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("worker %d got %v, want %v", w, got, want)
		}
	}
	if err := shutdown(); err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func TestMuxPushPullBatchInterleaved(t *testing.T) {
	const workers, tensors, iters = 4, 3, 5
	_, g, shutdown := newMuxCluster(t, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			link := g.Worker(w)
			idx := []int{0, 1, 2}
			for it := 0; it < iters; it++ {
				chans := make([]<-chan PullResult, tensors)
				err := link.PushPullBatch(it, idx,
					func(tr int) []float64 { return []float64{float64(w + tr + it)} },
					func(tr int, ch <-chan PullResult) { chans[tr] = ch })
				if err != nil {
					t.Errorf("worker %d iter %d: %v", w, it, err)
					return
				}
				for tr, ch := range chans {
					r := <-ch
					if r.Err != nil {
						t.Errorf("worker %d iter %d tensor %d: %v", w, it, tr, r.Err)
						return
					}
					// mean over w of (w + tr + it) = 1.5 + tr + it
					if want := 1.5 + float64(tr+it); r.Data[0] != want {
						t.Errorf("worker %d iter %d tensor %d: got %v want %v", w, it, tr, r.Data[0], want)
					}
					link.Recycle(r.Data)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := shutdown(); err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestMuxGoroutineBudget pins the scaling property the mux exists for: the
// goroutine cost of a cluster is per-connection, not per-worker — a 32×
// worker increase adds zero goroutines.
func TestMuxGoroutineBudget(t *testing.T) {
	measure := func(workers int) int {
		before := runtime.NumGoroutine()
		_, g, shutdown := newMuxCluster(t, workers)
		// One round so everything is spun up.
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				link := g.Worker(w)
				link.Push(0, 0, []float64{1})
				if data, err := link.Pull(0, 0); err == nil {
					link.Recycle(data)
				}
			}(w)
		}
		wg.Wait()
		during := runtime.NumGoroutine() - before
		if err := shutdown(); err != nil {
			t.Fatalf("serve (%d workers): %v", workers, err)
		}
		return during
	}
	small, big := measure(2), measure(64)
	if big > small {
		t.Fatalf("goroutines grew with workers: %d at W=2, %d at W=64", small, big)
	}
	// Two per side per physical conn: demux + responder (server), demux +
	// granter (client), plus the ServeMux caller itself.
	if small > 5 {
		t.Fatalf("mux cluster costs %d goroutines, want ≤ 5", small)
	}
}

func TestMuxGroupCloseFailsPending(t *testing.T) {
	_, g, shutdown := newMuxCluster(t, 2)
	// Worker 0 pulls a slot that can never aggregate (worker 1 never
	// pushes), then the group closes underneath it.
	link := g.Worker(0)
	if err := link.Push(0, 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	ch, err := link.PullAsync(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = shutdown() // closes the conn with the pull in flight
	select {
	case r := <-ch:
		if r.Err == nil {
			t.Fatal("pending pull resolved without error across close")
		}
		if !errors.Is(r.Err, ErrConnLost) {
			t.Fatalf("pending pull failed with %v, want ErrConnLost", r.Err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending pull hung across close")
	}
	if _, err := link.PullAsync(0, 1); err == nil {
		t.Fatal("pull after close succeeded")
	}
}

// TestMuxConnLossUnblocksCreditWaiters pins the abort path: a sender
// parked in a credit reservation only wakes on close or an incoming
// grant, so when the connection dies the group's readLoop must close the
// mux — otherwise a worker blocked mid-push hangs forever (emu.Run's
// abort closes raw conns and then waits for every worker).
func TestMuxConnLossUnblocksCreditWaiters(t *testing.T) {
	a, b := transport.Pipe(0, 0)
	g := NewMuxGroup(a, 1, MuxGroupOptions{})
	defer g.Close()
	// The peer drains bytes but never grants credit back.
	drained := make(chan struct{})
	go func() { defer close(drained); io.Copy(io.Discard, b) }()

	link := g.Worker(0)
	payload := make([]float64, 8<<10) // 65553 wire bytes per push
	// Three pushes leave the 256 KiB stream window short of a fourth.
	for i := 0; i < 3; i++ {
		if err := link.Push(0, i, payload); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() { blocked <- link.Push(1, 0, payload) }()
	select {
	case err := <-blocked:
		t.Fatalf("push did not block on exhausted credit (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}

	b.Close() // the connection dies while the sender waits for credit
	select {
	case err := <-blocked:
		if err == nil {
			t.Fatal("credit-blocked push succeeded after connection loss")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("credit-blocked sender hung after connection loss")
	}
	<-drained
	// New traffic is rejected, not blocked.
	if _, err := link.PullAsync(2, 0); err == nil {
		t.Fatal("pull after connection loss succeeded")
	}
}

func TestMuxWorkerCloseIsLocal(t *testing.T) {
	s, g, shutdown := newMuxCluster(t, 2)
	if err := g.Worker(0).Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Worker(0).PullAsync(0, 0); err == nil {
		t.Fatal("closed worker accepted a pull")
	}
	// The sibling's stream is untouched: once the server drops worker 0
	// from the barrier, worker 1 trains on alone over the same conn.
	s.DropWorker(0)
	link := g.Worker(1)
	if err := link.Push(0, 0, []float64{3}); err != nil {
		t.Fatal(err)
	}
	data, err := link.Pull(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 3 {
		t.Fatalf("solo mean %v, want 3", data[0])
	}
	link.Recycle(data)
	if err := shutdown(); err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func TestMuxProtocolErrorAttributedToWorker(t *testing.T) {
	s, g, shutdown := newMuxCluster(t, 2)
	link := g.Worker(1)
	if err := link.Push(0, 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	// Second push of the same tensor: a protocol violation by worker 1.
	if err := link.Push(0, 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	err := shutdown()
	var we *WorkerError
	if !errors.As(err, &we) || we.Worker != 1 {
		t.Fatalf("serve error %v, want WorkerError for worker 1", err)
	}
	if s.IsDropped(1) {
		t.Fatal("protocol violation should fail, not drop, the worker")
	}
}

func TestMuxDropWorkerRenormalizes(t *testing.T) {
	s, g, shutdown := newMuxCluster(t, 3)
	// Workers 0 and 1 push; 2 never does. Dropping 2 aggregates over the
	// survivors with a renormalized mean.
	for w := 0; w < 2; w++ {
		if err := g.Worker(w).Push(0, 0, []float64{float64(w + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	ch, err := g.Worker(0).PullAsync(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.DropWorker(2)
	select {
	case r := <-ch:
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if want := 1.5; r.Data[0] != want {
			t.Fatalf("renormalized mean %v, want %v", r.Data[0], want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pull hung after DropWorker")
	}
	if err := shutdown(); err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestMuxShardedLinks runs the sharded client over mux groups: one shared
// connection per shard, every in-process worker a stream on each.
func TestMuxShardedLinks(t *testing.T) {
	const workers, shards = 3, 2
	servers := make([]*Server, shards)
	groups := make([]*MuxGroup, shards)
	serveErr := make(chan error, shards)
	ids := []int{0, 1, 2}
	for sh := 0; sh < shards; sh++ {
		servers[sh] = NewServer(workers)
		a, b := transport.Pipe(0, 0)
		srv := servers[sh]
		go func() { serveErr <- srv.ServeMux(b, ids) }()
		groups[sh] = NewMuxGroup(a, workers, MuxGroupOptions{PullTimeout: 5 * time.Second})
	}
	of := func(tensor int) int { return tensor % shards }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			links := make([]WorkerLink, shards)
			for sh := range links {
				links[sh] = groups[sh].Worker(w)
			}
			sc := NewShardedLinks(links, of)
			for tr := 0; tr < 4; tr++ {
				if err := sc.Push(0, tr, []float64{float64(w * tr)}); err != nil {
					t.Errorf("worker %d tensor %d: %v", w, tr, err)
					return
				}
			}
			for tr := 0; tr < 4; tr++ {
				data, err := sc.Pull(0, tr)
				if err != nil {
					t.Errorf("worker %d tensor %d: %v", w, tr, err)
					return
				}
				if want := float64(tr); data[0] != want { // mean of {0,tr,2tr}
					t.Errorf("worker %d tensor %d: got %v want %v", w, tr, data[0], want)
				}
				sc.Recycle(data)
			}
		}(w)
	}
	wg.Wait()
	for _, g := range groups {
		g.Close()
	}
	for range groups {
		if err := <-serveErr; err != nil {
			t.Fatalf("serve: %v", err)
		}
	}
	for sh, srv := range servers {
		pushes, pulls := srv.Stats()
		if pushes != workers*2 || pulls != workers*2 {
			t.Fatalf("shard %d stats: %d pushes %d pulls, want %d each", sh, pushes, pulls, workers*2)
		}
	}
}
