package ps

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// sinkConn is a net.Conn whose writes vanish and whose reads block until
// Close — a stand-in server that lets the client's write path run at full
// speed with the read loop parked.
type sinkConn struct {
	once   sync.Once
	closed chan struct{}
}

func newSinkConn() *sinkConn { return &sinkConn{closed: make(chan struct{})} }

func (c *sinkConn) Read(b []byte) (int, error) {
	<-c.closed
	return 0, net.ErrClosed
}
func (c *sinkConn) Write(b []byte) (int, error) {
	select {
	case <-c.closed:
		return 0, net.ErrClosed
	default:
		return len(b), nil
	}
}
func (c *sinkConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}
func (c *sinkConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *sinkConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *sinkConn) SetDeadline(t time.Time) error      { return nil }
func (c *sinkConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *sinkConn) SetWriteDeadline(t time.Time) error { return nil }

// TestClientPushZeroAllocs pins the write-side hot-path contract: once the
// frame writer's scratch has grown, Push encodes and flushes a gradient
// with zero allocations.
func TestClientPushZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful without -race")
	}
	conn := newSinkConn()
	c := NewClient(conn)
	defer c.Close()
	data := make([]float64, 512)
	if err := c.Push(0, 0, data); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.Push(1, 2, data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Push allocated %v per call in steady state, want 0", allocs)
	}
}

// startPair wires one worker to a fresh server over an in-memory pipe.
func startPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer(1)
	sc, cc := net.Pipe()
	go s.Serve([]net.Conn{sc})
	c := NewClient(cc)
	t.Cleanup(func() { c.Close() })
	return s, c
}

// TestPushPullBatchRoundTrip drives a three-tensor batch through a real
// server: one buffered write carries all pushes and pull requests, and
// every pull resolves to the (single-worker) mean.
func TestPushPullBatchRoundTrip(t *testing.T) {
	_, c := startPair(t)
	tensors := []int{0, 1, 2}
	data := map[int][]float64{
		0: {1, 2, 3},
		1: {4},
		2: {5, 6},
	}
	chans := make(map[int]<-chan PullResult)
	err := c.PushPullBatch(3, tensors,
		func(tensor int) []float64 { return data[tensor] },
		func(tensor int, ch <-chan PullResult) { chans[tensor] = ch })
	if err != nil {
		t.Fatal(err)
	}
	if len(chans) != len(tensors) {
		t.Fatalf("res delivered %d channels, want %d", len(chans), len(tensors))
	}
	for _, tensor := range tensors {
		r := <-chans[tensor]
		if r.Err != nil {
			t.Fatalf("tensor %d: %v", tensor, r.Err)
		}
		want := data[tensor]
		if len(r.Data) != len(want) {
			t.Fatalf("tensor %d: got %v want %v", tensor, r.Data, want)
		}
		for i := range want {
			if r.Data[i] != want[i] {
				t.Fatalf("tensor %d: got %v want %v", tensor, r.Data, want)
			}
		}
		c.Recycle(r.Data)
	}
}

// TestPushPullBatchFailsAsUnit: a duplicate registration mid-batch must
// unwind every pull the batch registered, leaving the slots free.
func TestPushPullBatchFailsAsUnit(t *testing.T) {
	_, c := startPair(t)
	// Occupy (iter 1, tensor 1) so the batch's second registration dups.
	if _, err := c.PullAsync(1, 1); err != nil {
		t.Fatal(err)
	}
	err := c.PushPullBatch(1, []int{0, 1},
		func(tensor int) []float64 { return []float64{1} },
		func(tensor int, ch <-chan PullResult) {})
	if err == nil || !strings.Contains(err.Error(), "duplicate pull") {
		t.Fatalf("expected duplicate-pull error, got %v", err)
	}
	// Tensor 0's registration must have been rolled back.
	if _, err := c.PullAsync(1, 0); err != nil {
		t.Fatalf("batch failure leaked a registration: %v", err)
	}
}

// TestShardedBatchRejectsCrossShard: the sharded wrapper only batches
// same-destination tensors — one wire write goes to one shard.
func TestShardedBatchRejectsCrossShard(t *testing.T) {
	conns := []*sinkConn{newSinkConn(), newSinkConn()}
	clients := []*Client{NewClient(conns[0]), NewClient(conns[1])}
	sc := NewShardedClient(clients, func(tensor int) int { return tensor % 2 })
	defer sc.Close()
	err := sc.PushPullBatch(0, []int{0, 1},
		func(tensor int) []float64 { return nil },
		func(tensor int, ch <-chan PullResult) {})
	if err == nil || !strings.Contains(err.Error(), "spans shards") {
		t.Fatalf("expected cross-shard rejection, got %v", err)
	}
	if err := sc.PushPullBatch(0, nil, nil, nil); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
}

// TestPushPullBatchConnLost: a dead connection fails the whole batch with
// ErrConnLost and deregisters everything.
func TestPushPullBatchConnLost(t *testing.T) {
	conn := newSinkConn()
	c := NewClient(conn)
	conn.Close()
	defer c.Close()
	// The read loop may need a moment to observe the close; the write
	// itself fails regardless.
	err := c.PushPullBatch(0, []int{0},
		func(tensor int) []float64 { return []float64{1} },
		func(tensor int, ch <-chan PullResult) {})
	if err == nil {
		t.Fatal("expected failure on closed conn")
	}
	if !errors.Is(err, ErrConnLost) && !strings.Contains(err.Error(), "connection lost") {
		t.Fatalf("want conn-lost flavored error, got %v", err)
	}
}
