package ps

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"prophet/internal/transport"
)

func frameBytes(f *transport.Frame) []byte {
	var buf bytes.Buffer
	if err := transport.WriteFrame(&buf, f); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzServeConn feeds arbitrary byte streams to a live server connection.
// The server must terminate (no hang) and must not panic, whatever the
// wire carries: valid pushes, pulls for tensors never pushed, corrupted
// headers, or mid-frame garbage.
func FuzzServeConn(f *testing.F) {
	push := frameBytes(&transport.Frame{Type: transport.Push, Iter: 0, Tensor: 2,
		Payload: transport.EncodeFloats([]float64{1, -2, 3})})
	pull := frameBytes(&transport.Frame{Type: transport.PullReq, Iter: 0, Tensor: 2})
	f.Add(append(append([]byte(nil), push...), pull...)) // push then pull: full round
	f.Add(pull)                                          // pull for a tensor never pushed
	f.Add(push[:len(push)-3])                            // truncated push
	{
		bad := append([]byte(nil), push...)
		bad[0] ^= 0xFF // unknown frame type
		f.Add(bad)
	}
	{
		odd := frameBytes(&transport.Frame{Type: transport.Push, Iter: 1, Tensor: 0,
			Payload: []byte{1, 2, 3, 4, 5}}) // unaligned payload: not valid float64s
		f.Add(odd)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		srv := NewServer(1)
		a, b := net.Pipe()
		go io.Copy(io.Discard, a) // drain any responses
		go func() {
			a.Write(data)
			a.Close()
		}()
		done := make(chan struct{})
		go func() {
			srv.ServeWorker(0, b)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("ServeWorker did not return after the connection closed")
		}
	})
}
