package ps

import (
	"errors"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"prophet/internal/fault"
	"prophet/internal/transport"
)

// TestCorruptResponseFailsWaiter pins the readLoop bugfix: a pull response
// whose payload fails DecodeFloats must fail the matching waiter instead of
// silently stranding it forever.
func TestCorruptResponseFailsWaiter(t *testing.T) {
	a, b := net.Pipe()
	c := NewClient(a)
	defer c.Close()
	defer b.Close()
	go func() {
		// Act as the server: consume the pull request, answer with a
		// 5-byte payload (not a multiple of 8).
		if _, err := transport.ReadFrame(b); err != nil {
			t.Error(err)
			return
		}
		transport.WriteFrame(b, &transport.Frame{
			Type: transport.PullResp, Iter: 0, Tensor: 7, Payload: []byte{1, 2, 3, 4, 5},
		})
	}()
	ch, err := c.PullAsync(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if r.Err == nil {
			t.Fatalf("corrupt response delivered data %v, want error", r.Data)
		}
		if !strings.Contains(r.Err.Error(), "pull response") {
			t.Fatalf("error %q does not describe the decode failure", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter stranded: corrupt response never failed the pull")
	}
}

// TestLatePullIsProtocolError pins the slot-GC bugfix: a pull that arrives
// after the slot was served to every worker and garbage-collected must be
// rejected as a protocol error, not recreate an empty slot that queues the
// pull forever.
func TestLatePullIsProtocolError(t *testing.T) {
	srv := NewServer(1)
	a, b := transport.Pipe(0, 0)
	c := NewClient(a)
	done := make(chan error, 1)
	go func() { done <- srv.Serve([]net.Conn{b}) }()

	if err := c.Push(0, 0, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pull(0, 0); err != nil {
		t.Fatal(err) // first pull: served and slot GC'd
	}
	// The duplicate pull must fail — the server kills the connection with a
	// protocol error, which reaches the client as a lost connection.
	if _, err := c.Pull(0, 0); err == nil {
		t.Fatal("late pull succeeded, want protocol error")
	}
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "already served") {
		t.Fatalf("Serve = %v, want already-served protocol error", err)
	}
	c.Close()
	b.Close()
}

// TestDropWorkerRenormalizesMean: dropping a silent worker completes the
// slot over the survivors, with the mean divided by the live count.
func TestDropWorkerRenormalizesMean(t *testing.T) {
	srv, clients, cleanup := newCluster(t, 3)
	defer cleanup()
	if err := clients[0].Push(0, 0, []float64{3}); err != nil {
		t.Fatal(err)
	}
	if err := clients[2].Push(0, 0, []float64{6}); err != nil {
		t.Fatal(err)
	}
	got := make(chan PullResult, 2)
	for _, w := range []int{0, 2} {
		ch, err := clients[w].PullAsync(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		go func() { got <- <-ch }()
	}
	srv.DropWorker(1) // worker 1 never pushed
	for i := 0; i < 2; i++ {
		r := <-got
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if math.Abs(r.Data[0]-4.5) > 1e-15 {
			t.Fatalf("mean = %v, want (3+6)/2 = 4.5", r.Data[0])
		}
	}
	if !srv.IsDropped(1) || len(srv.Dropped()) != 1 {
		t.Fatalf("dropped = %v, want [1]", srv.Dropped())
	}
}

// TestStragglerPolicyDropsSilentWorker: with a straggler policy configured,
// a worker that never contributes to a slot others are waiting on is
// detected and dropped without any explicit DropWorker call.
func TestStragglerPolicyDropsSilentWorker(t *testing.T) {
	srv := NewServer(2)
	conns := make([]net.Conn, 2)
	clients := make([]*Client, 2)
	for w := range conns {
		a, b := transport.Pipe(0, 0)
		conns[w] = b
		clients[w] = NewClient(a)
	}
	var decided struct {
		sync.Mutex
		missing []int
	}
	srv.SetStragglerPolicy(30*time.Millisecond, func(iter, tensor int, missing []int) bool {
		decided.Lock()
		decided.missing = append([]int(nil), missing...)
		decided.Unlock()
		return true
	})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(conns) }()

	if err := clients[0].Push(3, 1, []float64{8}); err != nil {
		t.Fatal(err)
	}
	got, err := clients[0].Pull(3, 1) // parks; straggler timer fires
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-8) > 1e-15 {
		t.Fatalf("renormalized mean = %v, want 8/1", got[0])
	}
	decided.Lock()
	missing := decided.missing
	decided.Unlock()
	if len(missing) != 1 || missing[0] != 1 {
		t.Fatalf("policy saw missing %v, want [1]", missing)
	}
	if !srv.IsDropped(1) {
		t.Fatal("straggler not dropped")
	}
	for _, c := range clients {
		c.Close()
	}
	for _, b := range conns {
		b.Close()
	}
	if err := <-done; err != nil {
		t.Errorf("serve: %v", err)
	}
}

// TestPullTimeout: a pull whose slot never completes fails with
// ErrPullTimeout instead of hanging.
func TestPullTimeout(t *testing.T) {
	srv := NewServer(2)
	conns := make([]net.Conn, 2)
	clients := make([]*Client, 2)
	for w := range conns {
		a, b := transport.Pipe(0, 0)
		conns[w] = b
		clients[w] = NewClientWithOptions(a, Options{PullTimeout: 40 * time.Millisecond})
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(conns) }()

	clients[0].Push(0, 0, []float64{1}) // worker 1 never pushes
	_, err := clients[0].Pull(0, 0)
	if !errors.Is(err, ErrPullTimeout) {
		t.Fatalf("err = %v, want ErrPullTimeout", err)
	}
	for _, c := range clients {
		c.Close()
	}
	for _, b := range conns {
		b.Close()
	}
	if err := <-done; err != nil {
		t.Errorf("serve: %v", err)
	}
}

// TestOnWorkerFailureSeesCorruptFrame: a corrupted push payload surfaces
// through the per-worker failure callback and Serve's return value instead
// of being treated as a clean shutdown.
func TestOnWorkerFailureSeesCorruptFrame(t *testing.T) {
	srv := NewServer(1)
	a, b := transport.Pipe(0, 0)
	// Flip the high byte of the 13-byte header's length prefix (offset 12):
	// the announced payload balloons past MaxPayload and the server rejects
	// the frame outright — a deterministic framing error.
	fa := fault.CorruptAt(12).Wrap(a)
	c := NewClient(fa)
	failures := make(chan error, 1)
	srv.OnWorkerFailure(func(w int, err error) {
		if w != 0 {
			t.Errorf("failure attributed to worker %d", w)
		}
		failures <- err
	})
	done := make(chan error, 1)
	go func() { done <- srv.Serve([]net.Conn{b}) }()

	// A huge corrupted length prefix makes the server reject the frame.
	c.Push(0, 0, make([]float64, 64))
	select {
	case err := <-failures:
		if err == nil {
			t.Fatal("nil failure")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("corrupt frame never surfaced as a worker failure")
	}
	c.Close()
	b.Close()
	if err := <-done; err == nil {
		t.Fatal("Serve = nil, want worker error for corrupt frame")
	} else {
		var we *WorkerError
		if !errors.As(err, &we) || we.Worker != 0 {
			t.Fatalf("Serve = %v, want *WorkerError for worker 0", err)
		}
	}
}

// TestPullRetriesAcrossReconnect: a pull that loses its connection redials
// through Options.Redial, the server re-attaches via ServeWorker, and the
// response — whose slot survived because delivery never succeeded — lands.
func TestPullRetriesAcrossReconnect(t *testing.T) {
	srv := NewServer(1)
	a, b := transport.Pipe(0, 0)
	redials := make(chan net.Conn, 4)
	opts := Options{
		PullTimeout: 5 * time.Second,
		Backoff:     time.Millisecond,
		Redial: func() (net.Conn, error) {
			na, nb := transport.Pipe(0, 0)
			redials <- nb
			go srv.ServeWorker(0, nb)
			return na, nil
		},
	}
	c := NewClientWithOptions(a, opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve([]net.Conn{b}) }()

	if err := c.Push(0, 0, []float64{5}); err != nil {
		t.Fatal(err)
	}
	// Wait until the push has been aggregated, then cut the link under the
	// client — cleanly from the server's perspective (EOF), so Serve exits
	// with no error, the slot survives, and the pull must reconnect.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if p, _ := srv.Stats(); p == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("push never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	a.Close()
	got, err := c.Pull(0, 0)
	if err != nil {
		t.Fatalf("pull across reconnect: %v", err)
	}
	if got[0] != 5 {
		t.Fatalf("got %v, want [5]", got)
	}
	if err := <-done; err != nil {
		t.Errorf("serve: %v", err)
	}
	c.Close()
	for {
		select {
		case nb := <-redials:
			nb.Close()
		default:
			return
		}
	}
}

// TestInjectedDropSurfacesNotHangs: a connection dropped mid-frame by the
// fault injector produces a descriptive failure on both sides — the pull
// errors out and Serve attributes the failure — never a hang.
func TestInjectedDropSurfacesNotHangs(t *testing.T) {
	srv := NewServer(1)
	a, b := transport.Pipe(0, 0)
	// 64 floats = 512-byte payload + 13-byte header; drop mid-payload.
	fa := fault.DropAt(100).Wrap(a)
	c := NewClientWithOptions(fa, Options{PullTimeout: 2 * time.Second})
	done := make(chan error, 1)
	go func() { done <- srv.Serve([]net.Conn{b}) }()

	if err := c.Push(0, 0, make([]float64, 64)); !errors.Is(err, fault.ErrInjectedDrop) {
		t.Fatalf("push err = %v, want ErrInjectedDrop", err)
	}
	if _, err := c.Pull(0, 0); err == nil {
		t.Fatal("pull on dropped connection succeeded")
	}
	err := <-done
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("Serve = %v, want *WorkerError (mid-frame cut is not a clean close)", err)
	}
	c.Close()
	b.Close()
}

// TestStallDelaysButCompletes: a transient stall shorter than the pull
// timeout delays the round trip without failing it.
func TestStallDelaysButCompletes(t *testing.T) {
	srv := NewServer(1)
	a, b := transport.Pipe(0, 0)
	const stall = 60 * time.Millisecond
	fa := fault.StallAt(20, stall).Wrap(a) // mid-push-frame
	c := NewClientWithOptions(fa, Options{PullTimeout: 5 * time.Second})
	done := make(chan error, 1)
	go func() { done <- srv.Serve([]net.Conn{b}) }()

	start := time.Now()
	if err := c.Push(0, 0, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Pull(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("round trip %v beat the %v stall", elapsed, stall)
	}
	if got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	c.Close()
	b.Close()
	if err := <-done; err != nil {
		t.Errorf("serve: %v", err)
	}
}
