package ps

import (
	"errors"
	"net"
	"testing"
	"time"

	"prophet/internal/transport"
)

// The constructor and close paths of the sharded client and the mux
// worker: misconfiguration must fail loudly at construction, connection
// loss must fail a batch with a conn-flavored error instead of hanging,
// and Close must be idempotent.

func TestNewShardedLinksPanicsWithNoClients(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic with zero links")
		}
	}()
	NewShardedLinks(nil, nil)
}

func TestNewShardedLinksPanicsWithoutKeyMap(t *testing.T) {
	conns := []*sinkConn{newSinkConn(), newSinkConn()}
	links := []WorkerLink{NewClient(conns[0]), NewClient(conns[1])}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: multiple shards need a key map")
		}
		for _, l := range links {
			l.Close()
		}
	}()
	NewShardedLinks(links, nil)
}

// TestShardedClientDoubleClose pins Close idempotency across both link
// flavors: the second Close must not panic, double-fail pending pulls, or
// touch the other workers' streams.
func TestShardedClientDoubleClose(t *testing.T) {
	_, g, shutdown := newMuxCluster(t, 2)
	sc := NewShardedLinks([]WorkerLink{g.Worker(0)}, nil)
	if err := sc.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := sc.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// The sibling worker's stream is untouched by worker 0's close: the
	// group connection stays up until shutdown.
	if err := g.Worker(1).Push(0, 0, []float64{1}); err != nil {
		t.Fatalf("sibling worker push after double close: %v", err)
	}
	g.Worker(1).Close()
	shutdown() //nolint:errcheck — the server sees the torn-down conn
}

// TestMuxWorkerBatchAfterConnLoss: a PushPullBatch on a mux stream whose
// shared connection died must fail with a conn-flavored error — either at
// the write or on the delivered channels — never hang.
func TestMuxWorkerBatchAfterConnLoss(t *testing.T) {
	s := NewServer(2)
	a, b := transport.Pipe(0, 0)
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.ServeMux(b, []int{0, 1}) }()
	g := NewMuxGroup(a, 2, MuxGroupOptions{PullTimeout: 2 * time.Second})

	a.Close() // kill the shared connection under both workers
	<-serveErr

	link := g.Worker(0)
	var chans []<-chan PullResult
	err := link.PushPullBatch(0, []int{0},
		func(int) []float64 { return []float64{1} },
		func(_ int, ch <-chan PullResult) { chans = append(chans, ch) })
	if err == nil {
		// The demux loop may not have observed the loss at write time; the
		// pending pulls must then fail instead of waiting out the timeout.
		for _, ch := range chans {
			r := <-ch
			if r.Err == nil {
				t.Fatal("batch on dead connection delivered a result")
			}
			err = r.Err
		}
	}
	if err == nil {
		t.Fatal("batch on dead connection reported no error")
	}
	g.Close()
}

// TestMuxWorkerDoubleClose: worker-local Close is idempotent and fails the
// worker's pending pull exactly once with net.ErrClosed.
func TestMuxWorkerDoubleClose(t *testing.T) {
	_, g, shutdown := newMuxCluster(t, 2)
	link := g.Worker(0)
	ch, err := link.PullAsync(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := link.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	select {
	case r := <-ch:
		if !errors.Is(r.Err, net.ErrClosed) {
			t.Fatalf("pending pull failed with %v, want net.ErrClosed", r.Err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending pull not failed by Close")
	}
	if err := link.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := link.Push(0, 0, []float64{1}); err == nil {
		t.Fatal("push accepted after close")
	}
	g.Worker(1).Close()
	shutdown() //nolint:errcheck — remaining worker closed without pushing
}

// TestMuxGroupUnknownWorkerPanics: asking the group for a stream it never
// created is a programming error, not a recoverable condition.
func TestMuxGroupUnknownWorkerPanics(t *testing.T) {
	_, g, shutdown := newMuxCluster(t, 2)
	defer shutdown() //nolint:errcheck — conn torn down by Close
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown worker index")
		}
	}()
	g.Worker(5)
}
