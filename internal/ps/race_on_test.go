//go:build race

package ps

// raceEnabled lets allocation-count tests skip exact-zero assertions: the
// race detector's instrumentation adds allocations of its own.
const raceEnabled = true
