package fault

// The injectors key on absolute byte offsets in the write stream, and the
// multiplexed transport's tagged frames (stream id + frame header) are
// still just a deterministic byte stream — so a fault schedule must hit
// the mux stream at exactly the same offsets as any other writer. These
// tests pin that composition byte for byte.

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"prophet/internal/transport"
)

// muxStream emits a fixed interleaved sequence of tagged frames: a single
// send on stream 1, a bare pull request on stream 0, and a batched
// push+pull flush on stream 2.
func muxStream(c net.Conn) error {
	mc := transport.NewMuxConn(c, transport.MuxOptions{Streams: 3})
	if err := mc.SendFloats(1, transport.Push, 2, 0, []float64{1, 2, 3}); err != nil {
		return err
	}
	if err := mc.SendFrame(0, &transport.Frame{Type: transport.PullReq, Iter: 2}); err != nil {
		return err
	}
	b := mc.NewBatch(2)
	if err := b.AppendFloats(transport.Push, 2, 1, []float64{4}); err != nil {
		return err
	}
	if err := b.AppendFrame(&transport.Frame{Type: transport.PullReq, Iter: 2, Tensor: 1}); err != nil {
		return err
	}
	return mc.SendBatch(b)
}

func TestFaultsComposeWithMuxFrames(t *testing.T) {
	clean, err := deliver(t, Spec{}, muxStream)
	if err != nil {
		t.Fatal(err)
	}
	// 41 bytes for the stream-1 send (17-byte tagged header + 24 payload),
	// 17 for the bare pull request, 42 for the batch.
	if len(clean) != 100 {
		t.Fatalf("clean mux stream is %d bytes, want 100", len(clean))
	}

	// Corruption flips exactly the configured offset — here a payload byte
	// of the first tagged frame — and nothing else.
	const off = 20
	corrupted, err := deliver(t, CorruptAt(off), muxStream)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupted) != len(clean) {
		t.Fatalf("corruption changed stream length: %d vs %d", len(corrupted), len(clean))
	}
	for i := range clean {
		switch {
		case i == off && corrupted[i] != clean[i]^0xFF:
			t.Fatalf("byte %d: got %#x, want %#x flipped", i, corrupted[i], clean[i])
		case i != off && corrupted[i] != clean[i]:
			t.Fatalf("corruption leaked to byte %d", i)
		}
	}

	// A drop mid-batch delivers exactly the configured prefix of the
	// tagged stream — the batch write is split, not atomically dropped.
	const cut = 75
	dropped, werr := deliver(t, DropAt(cut), muxStream)
	if !errors.Is(werr, ErrInjectedDrop) {
		t.Fatalf("expected injected drop, got %v", werr)
	}
	if !bytes.Equal(dropped, clean[:cut]) {
		t.Fatalf("drop delivered %d bytes (%x), want the clean %d-byte prefix", len(dropped), dropped, cut)
	}
}
