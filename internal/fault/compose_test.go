package fault

// Chaos composition: the injectors key on absolute byte offsets in the
// write stream, and the transport's batched FrameWriter emits the exact
// byte stream of sequential WriteFrame calls — so every fault schedule
// must behave identically whether frames leave one write at a time or as
// one buffered flush. These tests pin that equivalence byte for byte.

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"prophet/internal/transport"
)

// deliver writes test frames through a spec-wrapped pipe endpoint and
// returns every byte the peer received plus the write-side error.
func deliver(t *testing.T, spec Spec, write func(c net.Conn) error) ([]byte, error) {
	t.Helper()
	a, b := net.Pipe()
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.Copy(&buf, b)
	}()
	werr := write(spec.Wrap(a))
	a.Close()
	<-done
	b.Close()
	return buf.Bytes(), werr
}

func TestFaultsComposeWithBufferedWriter(t *testing.T) {
	frames := []*transport.Frame{
		{Type: transport.Push, Iter: 1, Tensor: 0, Payload: transport.EncodeFloats([]float64{1, 2, 3})},
		{Type: transport.PullReq, Iter: 1, Tensor: 0},
		{Type: transport.Push, Iter: 1, Tensor: 1, Payload: transport.EncodeFloats([]float64{4})},
		{Type: transport.PullReq, Iter: 1, Tensor: 1},
	}
	sequential := func(c net.Conn) error {
		for _, f := range frames {
			if err := transport.WriteFrame(c, f); err != nil {
				return err
			}
		}
		return nil
	}
	batched := func(c net.Conn) error {
		fw := transport.NewFrameWriter(c)
		for _, f := range frames {
			if err := fw.AppendFrame(f); err != nil {
				return err
			}
		}
		return fw.Flush()
	}

	// Offsets chosen to land inside the first payload (corrupt), on a
	// frame boundary mid-batch (drop), and inside the third frame (stall):
	// frame 1 spans bytes 0..36, frame 2 is 37..49, frame 3 starts at 50.
	specs := []Spec{
		CorruptAt(20),
		DropAt(50),
		StallAt(55, time.Millisecond),
	}
	for _, spec := range specs {
		t.Run(spec.String(), func(t *testing.T) {
			seqBytes, seqErr := deliver(t, spec, sequential)
			batBytes, batErr := deliver(t, spec, batched)
			if !bytes.Equal(seqBytes, batBytes) {
				t.Fatalf("delivered streams differ under %v:\nseq  (%d) %x\nbatch (%d) %x",
					spec, len(seqBytes), seqBytes, len(batBytes), batBytes)
			}
			if errors.Is(seqErr, ErrInjectedDrop) != errors.Is(batErr, ErrInjectedDrop) {
				t.Fatalf("drop surfaced on one path only: seq %v, batch %v", seqErr, batErr)
			}
			if spec.DropAfterBytes > 0 {
				if !errors.Is(batErr, ErrInjectedDrop) {
					t.Fatalf("expected injected drop, got %v", batErr)
				}
				if int64(len(batBytes)) != spec.DropAfterBytes {
					t.Fatalf("drop delivered %d bytes, want exactly %d", len(batBytes), spec.DropAfterBytes)
				}
			} else if seqErr != nil || batErr != nil {
				t.Fatalf("unexpected write errors: seq %v, batch %v", seqErr, batErr)
			}
		})
	}
}

// TestCorruptedBatchStillFrames checks the reader-side view: a corruption
// inside one frame of a batched flush flips exactly that frame's payload
// byte, leaving the framing of every other frame in the batch intact.
func TestCorruptedBatchStillFrames(t *testing.T) {
	payload := transport.EncodeFloats([]float64{1, 2})
	frames := []*transport.Frame{
		{Type: transport.Push, Iter: 1, Tensor: 0, Payload: payload},
		{Type: transport.PullReq, Iter: 1, Tensor: 0},
	}
	// Byte 13 is the first payload byte of frame 1 (after its header).
	got, err := deliver(t, CorruptAt(13), func(c net.Conn) error {
		fw := transport.NewFrameWriter(c)
		for _, f := range frames {
			if err := fw.AppendFrame(f); err != nil {
				return err
			}
		}
		return fw.Flush()
	})
	if err != nil {
		t.Fatal(err)
	}
	fr := transport.NewFrameReader(bytes.NewReader(got), nil)
	f1, err := fr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(f1.Payload, payload) {
		t.Fatal("payload byte was not corrupted")
	}
	want := append([]byte(nil), payload...)
	want[0] ^= 0xFF
	if !bytes.Equal(f1.Payload, want) {
		t.Fatalf("corruption moved: got %x want %x", f1.Payload, want)
	}
	f2, err := fr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if f2.Type != transport.PullReq || f2.Iter != 1 {
		t.Fatalf("second frame of the batch lost framing: %+v", f2)
	}
}
