// Package fault provides deterministic, seedable fault injectors for the
// live parameter-server path. Each injector wraps a net.Conn and perturbs
// its *write* stream at exact byte offsets — a connection drop after N
// bytes, a stall of duration D when the stream crosses byte N, a one-byte
// corruption at offset N, or a slow-link throttle (straggler) — so chaos
// tests can replay the same fault schedule run after run.
//
// Faults act on the write path of the wrapped endpoint: wrapping a worker's
// client connection perturbs the bytes the *worker* sends (its pushes and
// pull requests). A drop additionally closes the underlying connection, so
// both directions die, exactly like a reset link.
package fault

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"prophet/internal/transport"
)

// ErrInjectedDrop is returned by writes on a connection whose injected drop
// point has been reached.
var ErrInjectedDrop = errors.New("fault: injected connection drop")

// Spec describes one connection's fault schedule. The zero value injects
// nothing. Offsets are zero-based positions in the endpoint's write stream.
type Spec struct {
	// DropAfterBytes, when > 0, drops the connection once that many bytes
	// have been written: the write that crosses the threshold delivers only
	// the bytes below it, the underlying conn is closed, and every later
	// write fails with ErrInjectedDrop.
	DropAfterBytes int64
	// StallAtByte, when > 0, stalls the write that crosses that offset for
	// StallFor before delivering it (a transient hiccup / straggler burst).
	StallAtByte int64
	StallFor    time.Duration
	// CorruptAtByte, when > 0, XOR-flips the byte at that stream offset
	// (frame corruption: a flipped length prefix or payload byte).
	CorruptAtByte int64
	// ThrottleBytesPerSec, when > 0, shapes all writes to that rate — the
	// persistent slow link of a straggling worker.
	ThrottleBytesPerSec float64
}

// Active reports whether the spec injects anything.
func (s Spec) Active() bool {
	return s.DropAfterBytes > 0 || (s.StallAtByte > 0 && s.StallFor > 0) ||
		s.CorruptAtByte > 0 || s.ThrottleBytesPerSec > 0
}

// String summarizes the schedule for logs and experiment renders.
func (s Spec) String() string {
	switch {
	case !s.Active():
		return "none"
	case s.DropAfterBytes > 0:
		return fmt.Sprintf("drop@%dB", s.DropAfterBytes)
	case s.StallAtByte > 0:
		return fmt.Sprintf("stall@%dB/%v", s.StallAtByte, s.StallFor)
	case s.CorruptAtByte > 0:
		return fmt.Sprintf("corrupt@%dB", s.CorruptAtByte)
	default:
		return fmt.Sprintf("throttle@%.0fB/s", s.ThrottleBytesPerSec)
	}
}

// Wrap returns c with the spec's faults injected on its write path, or c
// itself when the spec is inactive.
func (s Spec) Wrap(c net.Conn) net.Conn { return s.WrapObserved(c, nil) }

// WrapObserved is Wrap with a notification hook: onFault is called once per
// injector firing with the injector family name ("drop", "stall",
// "corrupt"). The persistent throttle shapes every write and never "fires",
// so it reports nothing. The hook runs outside the conn's lock but on the
// writing goroutine — keep it cheap and non-blocking.
func (s Spec) WrapObserved(c net.Conn, onFault func(kind string)) net.Conn {
	if !s.Active() {
		return c
	}
	fc := &conn{Conn: c, spec: s, sleep: time.Sleep, onFault: onFault}
	if s.ThrottleBytesPerSec > 0 {
		fc.limiter = transport.NewLimiter(s.ThrottleBytesPerSec, 4<<10)
	}
	return fc
}

// Convenience constructors for single-fault specs.

// DropAt drops the connection after n written bytes.
func DropAt(n int64) Spec { return Spec{DropAfterBytes: n} }

// StallAt stalls for d the write crossing byte n.
func StallAt(n int64, d time.Duration) Spec { return Spec{StallAtByte: n, StallFor: d} }

// CorruptAt flips the byte at stream offset n.
func CorruptAt(n int64) Spec { return Spec{CorruptAtByte: n} }

// Throttle shapes writes to bytesPerSec (a straggler link).
func Throttle(bytesPerSec float64) Spec { return Spec{ThrottleBytesPerSec: bytesPerSec} }

// Derive builds a deterministic spec of the given kind from a seed: offsets
// land uniformly in [lo, hi), so a chaos test sweeping seeds explores the
// fault space reproducibly.
func Derive(seed uint64, kind Kind, lo, hi int64) Spec {
	if hi <= lo {
		hi = lo + 1
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	off := lo + rng.Int64N(hi-lo)
	if off < 1 {
		off = 1
	}
	switch kind {
	case Drop:
		return DropAt(off)
	case Stall:
		return StallAt(off, time.Duration(50+rng.Int64N(100))*time.Millisecond)
	case Corrupt:
		return CorruptAt(off)
	case Straggler:
		// 8–64 KB/s: slow enough to trip any straggler detector.
		return Throttle(float64(8<<10) * float64(1+rng.Int64N(8)))
	default:
		return Spec{}
	}
}

// Kind enumerates the injector families.
type Kind int

// The injector families Derive can build.
const (
	Drop Kind = iota
	Stall
	Corrupt
	Straggler
)

func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Stall:
		return "stall"
	case Corrupt:
		return "corrupt"
	case Straggler:
		return "straggler"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// conn implements the injectors over an underlying net.Conn.
type conn struct {
	net.Conn
	spec    Spec
	limiter *transport.Limiter
	sleep   func(time.Duration)
	onFault func(kind string)

	mu      sync.Mutex
	written int64
	stalled bool
	dropped bool
}

// Write applies the fault schedule, then forwards to the underlying conn.
func (c *conn) Write(b []byte) (int, error) {
	if c.limiter != nil {
		c.limiter.Wait(len(b))
	}
	c.mu.Lock()
	if c.dropped {
		c.mu.Unlock()
		return 0, ErrInjectedDrop
	}
	start := c.written
	end := start + int64(len(b))

	// Stall: pause the write that crosses the offset, once.
	if s := c.spec; s.StallAtByte > 0 && s.StallFor > 0 && !c.stalled &&
		start <= s.StallAtByte && s.StallAtByte < end {
		c.stalled = true
		sleep := c.sleep
		c.mu.Unlock()
		c.fire("stall")
		sleep(s.StallFor)
		c.mu.Lock()
		if c.dropped {
			c.mu.Unlock()
			return 0, ErrInjectedDrop
		}
	}

	// Corrupt: flip the byte at the configured stream offset.
	corrupted := false
	if at := c.spec.CorruptAtByte; at > 0 && start <= at && at < end {
		cp := make([]byte, len(b))
		copy(cp, b)
		cp[at-start] ^= 0xFF
		b = cp
		corrupted = true
	}

	// Drop: deliver bytes below the threshold, then kill the connection.
	if lim := c.spec.DropAfterBytes; lim > 0 && end > lim {
		keep := lim - start
		if keep < 0 {
			keep = 0
		}
		c.dropped = true
		c.mu.Unlock()
		if corrupted {
			c.fire("corrupt")
		}
		c.fire("drop")
		n := 0
		if keep > 0 {
			n, _ = c.Conn.Write(b[:keep])
		}
		c.Conn.Close()
		return n, ErrInjectedDrop
	}

	c.written = end
	c.mu.Unlock()
	if corrupted {
		c.fire("corrupt")
	}
	n, err := c.Conn.Write(b)
	if n != len(b) {
		// Keep the offset ledger honest on short writes.
		c.mu.Lock()
		c.written -= int64(len(b) - n)
		c.mu.Unlock()
	}
	return n, err
}

// fire notifies the observer hook of an injector firing.
func (c *conn) fire(kind string) {
	if c.onFault != nil {
		c.onFault(kind)
	}
}

// Written returns the number of bytes delivered so far (test hook).
func (c *conn) Written() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written
}
