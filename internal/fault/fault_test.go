package fault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// drain reads everything from c until it closes and reports the bytes.
func drain(c net.Conn) <-chan []byte {
	out := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, c)
		out <- buf.Bytes()
	}()
	return out
}

func TestDropAtDeliversPrefixThenKills(t *testing.T) {
	a, b := net.Pipe()
	fc := DropAt(10).Wrap(a)
	got := drain(b)

	if n, err := fc.Write(make([]byte, 8)); err != nil || n != 8 {
		t.Fatalf("write below threshold: n=%d err=%v", n, err)
	}
	// This write crosses byte 10: exactly 2 more bytes arrive, then the
	// connection dies.
	if _, err := fc.Write(make([]byte, 8)); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("crossing write err = %v, want ErrInjectedDrop", err)
	}
	if _, err := fc.Write([]byte{1}); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("post-drop write err = %v, want ErrInjectedDrop", err)
	}
	if data := <-got; len(data) != 10 {
		t.Fatalf("peer received %d bytes, want exactly 10", len(data))
	}
}

func TestStallAtDelaysOnce(t *testing.T) {
	a, b := net.Pipe()
	const stall = 50 * time.Millisecond
	fc := StallAt(5, stall).Wrap(a)
	go drain(b)

	start := time.Now()
	if _, err := fc.Write(make([]byte, 8)); err != nil { // crosses byte 5
		t.Fatal(err)
	}
	if d := time.Since(start); d < stall {
		t.Fatalf("crossing write took %v, want >= %v", d, stall)
	}
	start = time.Now()
	if _, err := fc.Write(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= stall {
		t.Fatalf("stall fired twice: second write took %v", d)
	}
	fc.Close()
}

func TestCorruptAtFlipsExactlyOneByte(t *testing.T) {
	a, b := net.Pipe()
	fc := CorruptAt(8).Wrap(a)
	got := drain(b)

	src := make([]byte, 16)
	for i := range src {
		src[i] = byte(i)
	}
	sent := append([]byte(nil), src...)
	if _, err := fc.Write(src); err != nil {
		t.Fatal(err)
	}
	fc.Close()
	data := <-got
	if len(data) != 16 {
		t.Fatalf("received %d bytes", len(data))
	}
	for i, v := range data {
		want := sent[i]
		if i == 8 {
			want ^= 0xFF
		}
		if v != want {
			t.Fatalf("byte %d = %#x, want %#x", i, v, want)
		}
	}
	// The caller's buffer must not be mutated.
	if !bytes.Equal(src, sent) {
		t.Fatal("injector corrupted the caller's buffer in place")
	}
}

func TestThrottleShapesWrites(t *testing.T) {
	a, b := net.Pipe()
	fc := Throttle(64 << 10).Wrap(a) // 64 KB/s, 4 KB burst
	go drain(b)

	start := time.Now()
	if _, err := fc.Write(make([]byte, 12<<10)); err != nil {
		t.Fatal(err)
	}
	// 12 KB against a 4 KB burst leaves >= 8 KB paced at 64 KB/s = 125ms.
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("12 KB write took %v, want >= 100ms of shaping", d)
	}
	fc.Close()
}

func TestInactiveSpecIsPassthrough(t *testing.T) {
	a, _ := net.Pipe()
	defer a.Close()
	if got := (Spec{}).Wrap(a); got != a {
		t.Fatal("inactive spec wrapped the conn")
	}
	if (Spec{}).Active() {
		t.Fatal("zero spec active")
	}
	if s := (Spec{}).String(); s != "none" {
		t.Fatalf("String() = %q", s)
	}
}

func TestDeriveIsDeterministicAndBounded(t *testing.T) {
	for _, kind := range []Kind{Drop, Stall, Corrupt, Straggler} {
		s1 := Derive(42, kind, 100, 500)
		s2 := Derive(42, kind, 100, 500)
		if s1 != s2 {
			t.Fatalf("%v: same seed gave %+v and %+v", kind, s1, s2)
		}
		if !s1.Active() {
			t.Fatalf("%v: derived spec inactive: %+v", kind, s1)
		}
		switch kind {
		case Drop:
			if s1.DropAfterBytes < 100 || s1.DropAfterBytes >= 500 {
				t.Fatalf("drop offset %d outside [100,500)", s1.DropAfterBytes)
			}
		case Stall:
			if s1.StallAtByte < 100 || s1.StallAtByte >= 500 || s1.StallFor <= 0 {
				t.Fatalf("stall spec %+v outside bounds", s1)
			}
		case Corrupt:
			if s1.CorruptAtByte < 100 || s1.CorruptAtByte >= 500 {
				t.Fatalf("corrupt offset %d outside [100,500)", s1.CorruptAtByte)
			}
		case Straggler:
			if s1.ThrottleBytesPerSec <= 0 {
				t.Fatalf("straggler spec %+v has no rate", s1)
			}
		}
	}
	if Derive(1, Drop, 100, 500) == Derive(2, Drop, 100, 500) {
		t.Fatal("different seeds produced identical drop specs")
	}
}
