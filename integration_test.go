package prophet_test

import (
	"math"
	"testing"

	"prophet/internal/cluster"
	"prophet/internal/core"
	"prophet/internal/model"
	"prophet/internal/netsim"
	"prophet/internal/profiler"
	"prophet/internal/stepwise"
)

// fullStack builds the complete profile → plan → simulate pipeline once.
func fullStack(t testing.TB, base *model.Model, batch int, mbps float64) (*profiler.Result, *cluster.Result) {
	t.Helper()
	wire := model.WithWireFactor(base, 2)
	agg := stepwise.Aggregate(wire, wire.TotalBytes()/13, 0)
	prof, err := profiler.Run(profiler.Config{Model: wire, Batch: batch, Agg: agg, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{
		Model: wire, Batch: batch, Workers: 3, Agg: agg,
		Uplink: func(int) netsim.LinkConfig {
			return netsim.DefaultLinkConfig(netsim.Const(netsim.Goodput(netsim.Mbps(mbps))))
		},
		Scheduler:    cluster.ProphetFactory(prof.Profile()),
		Iterations:   6,
		Seed:         2,
		LogTransfers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prof, res
}

// TestProfiledTimesMatchExecution checks the core premise of Prophet's
// design: the profiled generation times c(i) predict the executed release
// times within jitter, iteration after iteration.
func TestProfiledTimesMatchExecution(t *testing.T) {
	prof, res := fullStack(t, model.ResNet50(), 64, 3000)
	// Executed generation times, relative to each iteration's backward
	// start, from the transfer log.
	byIter := map[int]map[int]float64{}
	for _, e := range res.Transfers.Entries {
		if byIter[e.Iteration] == nil {
			byIter[e.Iteration] = map[int]float64{}
		}
		byIter[e.Iteration][e.Gradient] = e.Generated
	}
	n := len(prof.Gen)
	for iter := 1; iter < 5; iter++ {
		gen := byIter[iter]
		if len(gen) != n {
			t.Fatalf("iteration %d logged %d gradients, want %d", iter, len(gen), n)
		}
		// Backward start of this iteration = generation time of the first
		// released bucket minus its profiled offset; compare *relative*
		// spans instead: executed c(0) − c(n−1) vs profiled.
		execSpan := gen[0] - gen[n-1]
		profSpan := prof.Gen[0] - prof.Gen[n-1]
		if math.Abs(execSpan-profSpan)/profSpan > 0.10 {
			t.Fatalf("iteration %d backward span %v deviates from profile %v", iter, execSpan, profSpan)
		}
	}
}

// TestPlanWaitModelAgreesWithOrdering checks that the analytical Sec. 3
// model and Algorithm 1 agree: Prophet's planned start times never yield a
// larger analytical T_wait than FIFO's on the same profile.
func TestPlanWaitModelAgreesWithOrdering(t *testing.T) {
	wire := model.WithWireFactor(model.ResNet50(), 2)
	agg := stepwise.Aggregate(wire, wire.TotalBytes()/13, 0)
	prof, err := profiler.Run(profiler.Config{Model: wire, Batch: 64, Agg: agg, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := prof.Profile()
	for _, mbps := range []float64{1000, 3000} {
		bw := netsim.Goodput(netsim.Mbps(mbps))
		plan, err := core.Assemble(p, core.Config{Bandwidth: bw})
		if err != nil {
			t.Fatal(err)
		}
		hw := model.M60Like()
		est := make([]float64, p.N())
		fwd := make([]float64, p.N())
		for i := range est {
			est[i] = p.Bytes[i] / bw
			fwd[i] = wire.FwdTime(hw, wire.Grads[i], 64)
		}
		m := core.WaitModel{Gen: p.Gen, Est: est, FwdTime: fwd}
		prophetWait, _, _, err := m.Eval(plan.Start)
		if err != nil {
			t.Fatal(err)
		}
		fifoWait, _, _, err := m.Eval(m.FIFOStarts())
		if err != nil {
			t.Fatal(err)
		}
		if prophetWait > fifoWait*1.001 {
			t.Fatalf("at %v Mbps Prophet's analytical wait %v exceeds FIFO's %v", mbps, prophetWait, fifoWait)
		}
	}
}

// TestFullStackDeterminism: the complete pipeline is bit-reproducible.
func TestFullStackDeterminism(t *testing.T) {
	_, a := fullStack(t, model.ResNet18(), 32, 2000)
	_, b := fullStack(t, model.ResNet18(), 32, 2000)
	if a.Duration != b.Duration {
		t.Fatalf("durations differ: %v vs %v", a.Duration, b.Duration)
	}
	if len(a.Transfers.Entries) != len(b.Transfers.Entries) {
		t.Fatal("transfer logs differ in length")
	}
	for i := range a.Transfers.Entries {
		if a.Transfers.Entries[i] != b.Transfers.Entries[i] {
			t.Fatalf("transfer %d differs", i)
		}
	}
}

// TestConstraint7HoldsEndToEnd: in the executed simulation, no gradient's
// push ever starts before its generation — the paper's Constraint 7,
// verified on the real event stream rather than the plan.
func TestConstraint7HoldsEndToEnd(t *testing.T) {
	_, res := fullStack(t, model.ResNet50(), 64, 2000)
	for _, e := range res.Transfers.Entries {
		if e.Start < e.Generated-1e-9 {
			t.Fatalf("gradient %d iteration %d pushed at %v before generation %v",
				e.Gradient, e.Iteration, e.Start, e.Generated)
		}
	}
}

// TestGradientZeroWaitsLeastUnderProphet: the objective of the whole paper
// in one assertion — under Prophet, gradient 0's average push wait is below
// the per-gradient average (it is the most prioritized tensor).
func TestGradientZeroWaitsLeastUnderProphet(t *testing.T) {
	_, res := fullStack(t, model.ResNet50(), 64, 2000)
	var g0, all float64
	var g0n, alln int
	for _, e := range res.Transfers.Entries {
		if e.Iteration == 0 {
			continue // warmup
		}
		w := e.Wait()
		all += w
		alln++
		if e.Gradient == 0 {
			g0 += w
			g0n++
		}
	}
	if g0n == 0 || alln == 0 {
		t.Fatal("no samples")
	}
	if g0/float64(g0n) > all/float64(alln) {
		t.Fatalf("gradient 0 mean wait %v exceeds overall mean %v",
			g0/float64(g0n), all/float64(alln))
	}
}
