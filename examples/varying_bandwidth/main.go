// Varying bandwidth: demonstrate Prophet's Network Bandwidth Monitor. The
// link drops from 4 Gbps to 1.5 Gbps mid-run and recovers; Prophet's
// per-iteration re-planning tracks the change, while a variant pinned to
// its initial estimate mis-sizes its blocks.
//
//	go run ./examples/varying_bandwidth
package main

import (
	"fmt"
	"log"

	"prophet/internal/cluster"
	"prophet/internal/model"
	"prophet/internal/netsim"
	"prophet/internal/profiler"
	"prophet/internal/schedule"
	"prophet/internal/sim"
	"prophet/internal/stepwise"
)

func main() {
	m := model.WithWireFactor(model.ResNet50(), 2)
	batch := 64
	agg := stepwise.Aggregate(m, m.TotalBytes()/13, 0)
	prof, err := profiler.Run(profiler.Config{Model: m, Batch: batch, Agg: agg, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	varying := func(int) netsim.LinkConfig {
		tr := netsim.NewStepTrace(
			netsim.Step{From: 0, Rate: netsim.Goodput(netsim.Gbps(4))},
			netsim.Step{From: 8, Rate: netsim.Goodput(netsim.Gbps(1.5))},
			netsim.Step{From: 30, Rate: netsim.Goodput(netsim.Gbps(4))},
		)
		return netsim.DefaultLinkConfig(tr)
	}

	run := func(name string, factory cluster.SchedulerFactory) {
		res, err := cluster.Run(cluster.Config{
			Model: m, Batch: batch, Workers: 3, Agg: agg,
			Uplink: varying, Scheduler: factory, Iterations: 20, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		rates := res.Iters.PerIterationRates(batch)
		fmt.Printf("  %-22s overall %6.2f samples/s   per-iteration:", name, res.Rate(2))
		for _, r := range rates {
			fmt.Printf(" %5.1f", r)
		}
		fmt.Println()
	}

	fmt.Println("link: 4 Gbps → 1.5 Gbps (t=8s) → 4 Gbps (t=30s)")
	run("prophet (monitored)", cluster.ProphetFactory(prof.Profile()))

	stale := func(w int, eng *sim.Engine, uplink *netsim.Link) schedule.Scheduler {
		lcfg := uplink.Config()
		initial := lcfg.Trace.At(0)
		overhead := func(bw float64) float64 { return lcfg.SetupTime + lcfg.RampBytes/bw }
		p, err := schedule.NewProphet(prof.Profile(), func() float64 { return initial }, overhead)
		if err != nil {
			panic(err)
		}
		return p
	}
	run("prophet (stale B)", stale)
	run("bytescheduler", cluster.ByteSchedulerFactory(m, 4e6))
}
