// Custom model: study communication scheduling for an architecture outside
// the built-in zoo. Builds synthetic models with four tensor-size
// distributions via the workload package, profiles each, and compares FIFO
// with Prophet — the workflow a user would follow for their own network.
//
//	go run ./examples/custom_model
package main

import (
	"fmt"
	"log"

	"prophet/internal/cluster"
	"prophet/internal/model"
	"prophet/internal/netsim"
	"prophet/internal/profiler"
	"prophet/internal/stepwise"
	"prophet/internal/workload"
)

func main() {
	link := func(int) netsim.LinkConfig {
		return netsim.DefaultLinkConfig(netsim.Const(netsim.Goodput(netsim.Gbps(2))))
	}
	fmt.Println("synthetic 40-tensor, 25M-parameter models at 2 Gbps, 3 workers:")
	for _, shape := range []workload.Shape{
		workload.Uniform, workload.TailHeavy, workload.FrontHeavy, workload.Alternating,
	} {
		base, err := workload.Synthetic(shape, 40, 25_000_000, 7)
		if err != nil {
			log.Fatal(err)
		}
		wire := model.WithWireFactor(base, 2)
		agg := stepwise.Aggregate(wire, wire.TotalBytes()/13, 0)
		prof, err := profiler.Run(profiler.Config{Model: wire, Batch: 64, Agg: agg, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		rate := func(f cluster.SchedulerFactory) float64 {
			res, err := cluster.Run(cluster.Config{
				Model: wire, Batch: 64, Workers: 3, Agg: agg,
				Uplink: link, Scheduler: f, Iterations: 8, Seed: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			return res.Rate(2)
		}
		fifo := rate(cluster.FIFOFactory(wire))
		pro := rate(cluster.ProphetFactory(prof.Profile()))
		fmt.Printf("  %-12s %2d stepwise blocks   fifo %6.2f → prophet %6.2f samples/s (%+.1f%%)\n",
			shape, len(prof.Blocks), fifo, pro, 100*(pro/fifo-1))
	}
}
