// Bandwidth sweep: regenerate the shape of the paper's Table 2 — ResNet50
// training rate for Prophet, ByteScheduler, and P3 as the worker bandwidth
// limit varies from 1 to 10 Gbps. Prophet leads in the communication-bound
// band; everything converges when the network stops being the bottleneck.
//
//	go run ./examples/bandwidth_sweep
package main

import (
	"fmt"
	"log"

	"prophet/internal/cluster"
	"prophet/internal/model"
	"prophet/internal/netsim"
	"prophet/internal/profiler"
	"prophet/internal/stepwise"
)

func main() {
	m := model.WithWireFactor(model.ResNet50(), 2)
	batch := 64
	agg := stepwise.Aggregate(m, m.TotalBytes()/13, 0)
	prof, err := profiler.Run(profiler.Config{Model: m, Batch: batch, Agg: agg, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s  %9s %9s %9s\n", "Mbps", "prophet", "bytesch", "p3")
	for _, mbps := range []float64{1000, 2000, 3000, 4500, 6000, 10000} {
		link := func(int) netsim.LinkConfig {
			return netsim.DefaultLinkConfig(netsim.Const(netsim.Goodput(netsim.Mbps(mbps))))
		}
		rate := func(f cluster.SchedulerFactory) float64 {
			res, err := cluster.Run(cluster.Config{
				Model: m, Batch: batch, Workers: 3, Agg: agg,
				Uplink: link, Scheduler: f, Iterations: 10, Seed: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			return res.Rate(2)
		}
		fmt.Printf("%8.0f  %9.2f %9.2f %9.2f\n",
			mbps,
			rate(cluster.ProphetFactory(prof.Profile())),
			rate(cluster.ByteSchedulerFactory(m, 4e6)),
			rate(cluster.P3Factory(m, 4e6)),
		)
	}
}
