// Real training: run actual data-parallel SGD — a real MLP, real gradient
// bytes, a live parameter server over rate-shaped in-memory connections —
// under the paper's four scheduling strategies (FIFO, P3, ByteScheduler,
// Prophet). The loss trajectory is bit-identical across policies
// (synchronous SGD with deterministic aggregation); what differs is when
// tensor 0's aggregated gradient is back on the worker, which is what gates
// the next forward pass.
//
//	go run ./examples/realtraining
package main

import (
	"fmt"
	"log"

	"prophet/internal/emu"
	"prophet/internal/nn"
)

func main() {
	ds := nn.Blobs(2048, 16, 4, 9)
	base := emu.Config{
		Workers:              3,
		Layers:               []int{16, 128, 128, 4},
		Dataset:              ds,
		Batch:                64,
		Iterations:           15,
		LR:                   0.1,
		BandwidthBytesPerSec: 4e6, // 4 MB/s per worker: communication matters
		Seed:                 21,
	}

	fmt.Println("data-parallel MLP, 3 workers, live parameter server, 4 MB/s links")
	for _, policy := range []string{"fifo", "p3", "bytescheduler", "prophet"} {
		cfg := base
		cfg.Policy = policy
		res, err := emu.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var rtt float64
		for _, d := range res.Tensor0RoundTrip[1:] { // skip profiling iter
			rtt += d.Seconds()
		}
		rtt /= float64(len(res.Tensor0RoundTrip) - 1)
		fmt.Printf("  %-13s loss %.4f → %.4f   accuracy %.1f%%   tensor-0 round trip %6.1f ms   wall %s\n",
			policy, res.Losses[0], res.Losses[len(res.Losses)-1],
			100*res.FinalAccuracy, 1e3*rtt, res.Duration.Round(1e6))
	}
	fmt.Println("note: losses are identical across policies — only communication timing differs")
}
