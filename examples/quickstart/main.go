// Quickstart: profile a model, run Algorithm 1, and compare Prophet with
// ByteScheduler on the simulated cluster — the core workflow of this
// library in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"prophet/internal/cluster"
	"prophet/internal/model"
	"prophet/internal/netsim"
	"prophet/internal/profiler"
	"prophet/internal/stepwise"
)

func main() {
	// 1. Pick a model and batch size. WithWireFactor(…, 2) models the
	// paper's two-GPU worker nodes sharing one NIC.
	m := model.WithWireFactor(model.ResNet50(), 2)
	batch := 64

	// 2. Profile the job: the stepwise pattern of gradient generation.
	agg := stepwise.Aggregate(m, m.TotalBytes()/13, 0)
	prof, err := profiler.Run(profiler.Config{Model: m, Batch: batch, Agg: agg, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s: %d gradients arrive in %d stepwise blocks over %.0f ms\n",
		m.Name, m.NumGradients(), len(prof.Blocks), 1e3*prof.Gen[0])

	// 3. Run the simulated PS cluster at 3 Gbps per worker under both
	// strategies.
	link := func(int) netsim.LinkConfig {
		return netsim.DefaultLinkConfig(netsim.Const(netsim.Goodput(netsim.Gbps(3))))
	}
	run := func(name string, factory cluster.SchedulerFactory) float64 {
		res, err := cluster.Run(cluster.Config{
			Model: m, Batch: batch, Workers: 3, Agg: agg,
			Uplink: link, Scheduler: factory, Iterations: 10, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		rate := res.Rate(2)
		fmt.Printf("  %-14s %6.2f samples/s/worker   GPU %4.1f%%\n",
			name, rate, 100*res.GPUUtil(0, 2))
		return rate
	}
	fmt.Println("training ResNet50 (bs 64) on 3 workers at 3 Gbps:")
	bs := run("bytescheduler", cluster.ByteSchedulerFactory(m, 4e6))
	pro := run("prophet", cluster.ProphetFactory(prof.Profile()))
	fmt.Printf("Prophet vs ByteScheduler: %+.1f%%\n", 100*(pro/bs-1))
}
