// Package prophet_test holds the benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation (plus the DESIGN.md §5
// ablations and microbenchmarks of Algorithm 1 itself). Each experiment
// benchmark executes the corresponding regeneration and reports its
// headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both regenerates the evaluation and measures the harness's own cost.
// Passing -short switches the sweeps to quick mode.
package prophet_test

import (
	"testing"

	"prophet/internal/cluster"
	"prophet/internal/core"
	"prophet/internal/experiments"
	"prophet/internal/model"
	"prophet/internal/netsim"
	"prophet/internal/profiler"
	"prophet/internal/stepwise"
)

func benchCfg(b *testing.B) experiments.Config {
	return experiments.Config{Quick: testing.Short(), Iterations: 8, Warmup: 2, Seed: 1}
}

// runSpec executes one registered experiment b.N times.
func runSpec(b *testing.B, id string, metric func(experiments.Result) (string, float64)) {
	b.Helper()
	spec, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg(b)
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res, err = spec.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if metric != nil {
		name, v := metric(res)
		b.ReportMetric(v, name)
	}
}

func BenchmarkFig2_MotivationFIFO(b *testing.B) {
	runSpec(b, "fig2", func(r experiments.Result) (string, float64) {
		return "gpu-util-%", 100 * r.(*experiments.Fig2Result).AvgGPUUtil
	})
}

func BenchmarkFig3a_P3PartitionSweep(b *testing.B) {
	runSpec(b, "fig3a", func(r experiments.Result) (string, float64) {
		rates := r.(*experiments.Fig3aResult).Rates
		return "min-rate-samples/s", rates[0]
	})
}

func BenchmarkFig3b_ByteSchedulerTuning(b *testing.B) {
	runSpec(b, "fig3b", func(r experiments.Result) (string, float64) {
		return "rate-spread-%", 100 * r.(*experiments.Fig3bResult).Spread
	})
}

func BenchmarkFig4_StepwisePattern(b *testing.B) {
	runSpec(b, "fig4", func(r experiments.Result) (string, float64) {
		return "rn50-blocks", float64(len(r.(*experiments.Fig4Result).ResNet50Blocks))
	})
}

func BenchmarkFig5_IllustrativeExample(b *testing.B) {
	runSpec(b, "fig5", func(r experiments.Result) (string, float64) {
		f := r.(*experiments.Fig5Result)
		return "prophet-g0-start-ms", 1e3 * f.Grad0Start[len(f.Grad0Start)-1]
	})
}

func BenchmarkFig8_ModelsAndBatches(b *testing.B) {
	runSpec(b, "fig8", func(r experiments.Result) (string, float64) {
		rows := r.(*experiments.Fig8Result).Rows
		var s float64
		for _, row := range rows {
			s += row.Improvement
		}
		return "mean-gain-%", s / float64(len(rows))
	})
}

func BenchmarkFig9_GPUUtilization(b *testing.B) {
	runSpec(b, "fig9", func(r experiments.Result) (string, float64) {
		return "prophet-gpu-util-%", 100 * r.(*experiments.Fig9Result).ProphetAvg
	})
}

func BenchmarkFig10_NetworkThroughput(b *testing.B) {
	runSpec(b, "fig10", func(r experiments.Result) (string, float64) {
		return "prophet-MBps", r.(*experiments.Fig10Result).ProphetAvg / 1e6
	})
}

func BenchmarkFig11_TransferTimes(b *testing.B) {
	runSpec(b, "fig11", func(r experiments.Result) (string, float64) {
		f := r.(*experiments.Fig11Result)
		return "prophet-wait-ms", f.MeanWaitMS[len(f.MeanWaitMS)-1]
	})
}

func BenchmarkTable2_BandwidthSweep(b *testing.B) {
	runSpec(b, "table2", func(r experiments.Result) (string, float64) {
		t := r.(*experiments.Table2Result)
		return "prophet-3g-rate", t.Prophet[len(t.Prophet)/2]
	})
}

func BenchmarkTable3_BatchSweep(b *testing.B) {
	runSpec(b, "table3", func(r experiments.Result) (string, float64) {
		t := r.(*experiments.Table3Result)
		return "max-gain-%", maxOf(t.Improvement)
	})
}

func BenchmarkFig12_Scalability(b *testing.B) {
	runSpec(b, "fig12", func(r experiments.Result) (string, float64) {
		f := r.(*experiments.Fig12Result)
		return "per-worker-rate", f.PerWorkerRate[len(f.PerWorkerRate)-1]
	})
}

func BenchmarkFig13_ProfilingOverhead(b *testing.B) {
	runSpec(b, "fig13", func(r experiments.Result) (string, float64) {
		return "steady-gpu-util-%", 100 * r.(*experiments.Fig13Result).LateProphet
	})
}

func BenchmarkSec53_BandwidthConditions(b *testing.B) {
	runSpec(b, "sec53-bandwidth", func(r experiments.Result) (string, float64) {
		f := r.(*experiments.Sec53BandwidthResult)
		return "prophet-3g-rate", f.Prophet[0]
	})
}

func BenchmarkSec53_Heterogeneous(b *testing.B) {
	runSpec(b, "sec53-hetero", func(r experiments.Result) (string, float64) {
		return "prophet-rate", r.(*experiments.Sec53HeteroResult).Prophet
	})
}

func BenchmarkSec54_ProfilingCost(b *testing.B) {
	runSpec(b, "sec54-profiling", func(r experiments.Result) (string, float64) {
		f := r.(*experiments.Sec54ProfilingResult)
		return "rn50-profiling-s", f.WallTimeS[1]
	})
}

func BenchmarkAblation_Blocks(b *testing.B) {
	runSpec(b, "ablation-blocks", func(r experiments.Result) (string, float64) {
		return "prophet-rate", r.(*experiments.AblationBlocksResult).Prophet
	})
}

func BenchmarkAblation_Monitor(b *testing.B) {
	runSpec(b, "ablation-monitor", func(r experiments.Result) (string, float64) {
		f := r.(*experiments.AblationMonitorResult)
		return "monitor-gain-%", 100 * (f.Monitored/f.Stale - 1)
	})
}

func BenchmarkAblation_ProfileLength(b *testing.B) {
	runSpec(b, "ablation-profile", func(r experiments.Result) (string, float64) {
		return "rate-50iter", r.(*experiments.AblationProfileResult).Long
	})
}

func BenchmarkAblation_Overhead(b *testing.B) {
	runSpec(b, "ablation-overhead", func(r experiments.Result) (string, float64) {
		f := r.(*experiments.AblationOverheadResult)
		return "p3-gap-closed", f.NoOverhead[1] - f.WithOverhead[1]
	})
}

func BenchmarkExt_ASP(b *testing.B) {
	runSpec(b, "ext-asp", func(r experiments.Result) (string, float64) {
		return "asp-fast-worker-rate", r.(*experiments.ExtASPResult).ASPHetero
	})
}

func BenchmarkExt_Hardware(b *testing.B) {
	runSpec(b, "ext-hardware", func(r experiments.Result) (string, float64) {
		f := r.(*experiments.ExtHardwareResult)
		return "v100-gain-%", 100 * (f.V100Prophet/f.V100FIFO - 1)
	})
}

func BenchmarkExt_Shapes(b *testing.B) {
	runSpec(b, "ext-shapes", func(r experiments.Result) (string, float64) {
		f := r.(*experiments.ExtShapesResult)
		var s float64
		for i := range f.Prophet {
			s += 100 * (f.Prophet[i]/f.FIFO[i] - 1)
		}
		return "mean-gain-%", s / float64(len(f.Prophet))
	})
}

func BenchmarkExt_Transformer(b *testing.B) {
	runSpec(b, "ext-transformer", func(r experiments.Result) (string, float64) {
		f := r.(*experiments.ExtTransformerResult)
		return "p3-vs-prophet-%", 100 * (f.P3Rate/f.Prophet - 1)
	})
}

func BenchmarkExt_AllReduce(b *testing.B) {
	runSpec(b, "ext-allreduce", func(r experiments.Result) (string, float64) {
		f := r.(*experiments.ExtAllReduceResult)
		return "ps-vs-ring-%", 100 * (f.PSProphet[0]/f.Ring[0] - 1)
	})
}

// --- microbenchmarks of the core machinery ---

func rn50Setup(b *testing.B) (*core.Profile, *model.Model) {
	b.Helper()
	m := model.WithWireFactor(model.ResNet50(), 2)
	agg := stepwise.Aggregate(m, m.TotalBytes()/13, 0)
	prof, err := profiler.Run(profiler.Config{Model: m, Batch: 64, Agg: agg, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return prof.Profile(), m
}

// BenchmarkCore_Assemble measures one execution of Algorithm 1 — the
// per-iteration planning cost the paper claims is negligible (Sec. 5.4).
func BenchmarkCore_Assemble(b *testing.B) {
	prof, _ := rn50Setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Assemble(prof, core.Config{Bandwidth: 375e6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCore_Profiler measures the 50-iteration profiling pass.
func BenchmarkCore_Profiler(b *testing.B) {
	m := model.WithWireFactor(model.ResNet50(), 2)
	agg := stepwise.Aggregate(m, m.TotalBytes()/13, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profiler.Run(profiler.Config{Model: m, Batch: 64, Agg: agg, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCluster_Iteration measures simulator throughput: wall cost per
// simulated ResNet50 training iteration under Prophet.
func BenchmarkCluster_Iteration(b *testing.B) {
	prof, m := rn50Setup(b)
	link := func(int) netsim.LinkConfig {
		return netsim.DefaultLinkConfig(netsim.Const(netsim.Goodput(netsim.Gbps(3))))
	}
	iters := 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cluster.Run(cluster.Config{
			Model: m, Batch: 64, Workers: 3,
			Uplink: link, Scheduler: cluster.ProphetFactory(prof),
			Iterations: iters, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*iters)/b.Elapsed().Seconds(), "sim-iters/s")
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
