# Tier-1 verification plus a race pass over the concurrent packages.

GO ?= go

# Packages with real goroutine concurrency (live PS path + fault layer,
# profile cache, parallel sweep runner, probe observers) plus the shared
# drive layer both execution paths schedule through.
RACE_PKGS := ./internal/transport ./internal/ps ./internal/emu ./internal/drive ./internal/tensor ./internal/fault ./internal/profiler ./internal/experiments/runner ./internal/probe

# Native fuzz targets and their packages (go runs one target per invocation).
FUZZTIME ?= 10s

.PHONY: check tier1 build vet test lint race bench bench-json bench-emu-json fuzz trace-smoke

check: tier1 lint race trace-smoke

tier1: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Formatting gate plus staticcheck when the tool is installed (the gate
# must not require network access to fetch it).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# End-to-end trace export gate: run prophet-trace on both execution paths
# and validate the Chrome trace JSON (structure + required fields).
trace-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) run ./cmd/prophet-trace -path sim -policy fifo -iters 3 \
		-out $$tmp/sim.json -attrib $$tmp/sim_attrib.txt && \
	$(GO) run ./cmd/prophet-trace -path emu -policy prophet -iters 4 \
		-out $$tmp/emu.json -attrib $$tmp/emu_attrib.txt && \
	$(GO) run ./cmd/tracecheck $$tmp/sim.json $$tmp/emu.json && \
	test -s $$tmp/sim_attrib.txt && test -s $$tmp/emu_attrib.txt

# Reproducible single-shot benchmark pass; see README for regenerating
# bench_results.txt.
bench:
	$(GO) test -bench=. -benchtime=1x -count=1 -run '^$$' ./...

# Machine-readable allocation benchmarks for the simulator hot loops; the
# committed BENCH_sim.json is the reference the README quotes.
bench-json:
	$(GO) test -bench='Core_Assemble|Cluster_Iteration|SchedulePingPong' -benchmem -count=1 -run '^$$' \
		. ./internal/sim | $(GO) run ./cmd/bench2json > BENCH_sim.json

# Live-path counterpart: frame I/O micro-benches, PS round trips, and the
# whole-emulation BenchmarkEmu_Iteration. The committed BENCH_emu.json is
# the reference the README quotes.
bench-emu-json:
	$(GO) test -bench='FrameWrite|FrameWriter|FrameReader|DecodeFloatsInto|PS_PushPull|Emu_Iteration' \
		-benchmem -count=1 -run '^$$' \
		./internal/transport ./internal/ps ./internal/emu | $(GO) run ./cmd/bench2json > BENCH_emu.json

# Short fixed-budget fuzzing smoke: each target gets $(FUZZTIME).
fuzz:
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzReadFrameFaultStream$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzDecodeFloats$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ps -run '^$$' -fuzz '^FuzzServeConn$$' -fuzztime $(FUZZTIME)
