# Tier-1 verification plus a race pass over the concurrent packages.

GO ?= go

# Packages with real goroutine concurrency (live PS path + fault layer).
RACE_PKGS := ./internal/transport ./internal/ps ./internal/emu ./internal/tensor ./internal/fault

.PHONY: check tier1 build vet test race bench

check: tier1 race

tier1: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...
