# Tier-1 verification plus a race pass over the concurrent packages.

GO ?= go

# Packages with real goroutine concurrency (live PS path + fault layer,
# profile cache, parallel sweep runner, probe observers) plus the shared
# drive layer both execution paths schedule through.
RACE_PKGS := ./internal/transport ./internal/ps ./internal/emu ./internal/drive ./internal/tensor ./internal/fault ./internal/profiler ./internal/experiments/runner ./internal/probe ./internal/collective

# Native fuzz targets and their packages (go runs one target per invocation).
FUZZTIME ?= 10s

# Per-package coverage floors (percent) for the scheduling core and the
# live wire beneath it: the drive layer, the collective transports on top
# of it (simulated and live), the strategy registry, the PS + frame
# transport packages the emulation runs over, and the observability stack
# (probe events, stall attribution, prediction audit).
COVER_PKGS  := ./internal/drive ./internal/allreduce ./internal/strategy ./internal/ps ./internal/transport ./internal/collective ./internal/probe ./internal/probe/attrib ./internal/probe/predict
COVER_FLOOR ?= 80

.PHONY: check tier1 build vet test lint race bench bench-json bench-emu-json bench-scale fuzz trace-smoke conformance conformance-live cover predict-smoke

check: tier1 lint race conformance conformance-live cover trace-smoke predict-smoke

tier1: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Formatting gate plus staticcheck when the tool is installed (the gate
# must not require network access to fetch it).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# The (strategy × transport) conformance table under the race detector: every
# registry strategy against every backend's chunk schedule through one Driver.
conformance:
	$(GO) test -race -count=1 -run 'TestSchedulerConformance' ./internal/drive

# The live counterpart over real sockets: every registry strategy across
# {dedicated PS, muxed PS, ring, tree}, plus the sim≡live collective mirror,
# under the race detector.
conformance-live:
	$(GO) test -race -count=1 -run 'TestLiveTransportConformance|TestMirrorCollectiveTransports|TestCollectiveAckIsZero' ./internal/emu

# Coverage gate over the scheduling core: each package in COVER_PKGS must
# individually clear COVER_FLOOR percent of statements.
cover:
	@fail=0; for pkg in $(COVER_PKGS); do \
		out=$$($(GO) test -cover $$pkg | tail -n 1); echo "$$out"; \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "no coverage reported for $$pkg"; fail=1; \
		elif awk "BEGIN{exit !($$pct < $(COVER_FLOOR))}"; then \
			echo "coverage $$pct% below floor $(COVER_FLOOR)% for $$pkg"; fail=1; fi; \
	done; exit $$fail

# End-to-end trace export gate: run prophet-trace on both execution paths
# and validate the Chrome trace JSON (structure + required fields).
trace-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) run ./cmd/prophet-trace -path sim -policy fifo -iters 3 \
		-out $$tmp/sim.json -attrib $$tmp/sim_attrib.txt && \
	$(GO) run ./cmd/prophet-trace -path emu -policy prophet -iters 4 \
		-out $$tmp/emu.json -attrib $$tmp/emu_attrib.txt && \
	$(GO) run ./cmd/tracecheck $$tmp/sim.json $$tmp/emu.json && \
	test -s $$tmp/sim_attrib.txt && test -s $$tmp/emu_attrib.txt

# Reproducible single-shot benchmark pass; see README for regenerating
# bench_results.txt.
bench:
	$(GO) test -bench=. -benchtime=1x -count=1 -run '^$$' ./...

# Machine-readable allocation benchmarks for the simulator hot loops; the
# committed BENCH_sim.json is the reference the README quotes. Each file is
# stamped with the commit and UTC date the numbers were measured at.
BENCH_STAMP = -commit $$(git rev-parse --short HEAD) -date $$(date -u +%Y-%m-%d)

bench-json:
	$(GO) test -bench='Core_Assemble|Cluster_Iteration|SchedulePingPong' -benchmem -count=1 -run '^$$' \
		. ./internal/sim | $(GO) run ./cmd/bench2json $(BENCH_STAMP) > BENCH_sim.json

# Live-path counterpart: frame I/O micro-benches, PS round trips, the
# whole-emulation BenchmarkEmu_Iteration, and the mux scaling sweep
# (BenchmarkEmu_Scale: goroutine/RSS columns at up to 1000 workers). The
# committed BENCH_emu.json is the reference the README quotes.
bench-emu-json:
	$(GO) test -bench='FrameWrite|FrameWriter|FrameReader|DecodeFloatsInto|PS_PushPull|Emu_Iteration|Emu_Scale' \
		-benchmem -count=1 -run '^$$' \
		./internal/transport ./internal/ps ./internal/emu | $(GO) run ./cmd/bench2json $(BENCH_STAMP) > BENCH_emu.json

# The scaling sweep alone, human-readable: worker counts 8→1000 over 1 and
# 4 shards on the multiplexed transport, plus an unmuxed reference point.
bench-scale:
	$(GO) test -bench='Emu_Scale' -benchmem -benchtime=1x -count=1 -run '^$$' ./internal/emu

# Prediction-audit gate: the planned-vs-observed residual invariant for
# every strategy × {ps, ring, tree} under the race detector, plus a tiny
# ext-predict run (drift must rise under a bandwidth dip, the seeded
# throttle must alarm, the clean run must not — the experiment hard-fails
# otherwise).
predict-smoke:
	$(GO) test -race -count=1 -run 'TestPredictionInvariant|TestPredictChaos' \
		./internal/probe/predict ./internal/emu
	$(GO) run ./cmd/prophet-bench -only ext-predict -quick

# Short fixed-budget fuzzing smoke: each target gets $(FUZZTIME).
fuzz:
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzReadFrameFaultStream$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzDecodeFloats$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzMuxReadFrame$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ps -run '^$$' -fuzz '^FuzzServeConn$$' -fuzztime $(FUZZTIME)
