# Tier-1 verification plus a race pass over the concurrent packages.

GO ?= go

# Packages with real goroutine concurrency (live PS path + fault layer).
RACE_PKGS := ./internal/transport ./internal/ps ./internal/emu ./internal/tensor ./internal/fault

# Native fuzz targets and their packages (go runs one target per invocation).
FUZZTIME ?= 10s

.PHONY: check tier1 build vet test race bench fuzz

check: tier1 race

tier1: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# Reproducible single-shot benchmark pass; see README for regenerating
# bench_results.txt.
bench:
	$(GO) test -bench=. -benchtime=1x -count=1 -run '^$$' ./...

# Short fixed-budget fuzzing smoke: each target gets $(FUZZTIME).
fuzz:
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzReadFrameFaultStream$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzDecodeFloats$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ps -run '^$$' -fuzz '^FuzzServeConn$$' -fuzztime $(FUZZTIME)
