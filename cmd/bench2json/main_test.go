package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: prophet/internal/sim
BenchmarkCluster_Iteration-8   	     120	   9876543 ns/op	  123456 B/op	     789 allocs/op
BenchmarkEmu_Scale-8           	       4	 250000000 ns/op	  33.50 MB/s	 1048576 B/op	    4096 allocs/op	      87.0 goroutines	 5242880 peak-rss-bytes
PASS
ok  	prophet/internal/sim	2.345s
`

func TestRunStampsCommitAndDate(t *testing.T) {
	var out strings.Builder
	// The stamp is caller-supplied (the Makefile passes git/date output);
	// nothing here may consult the clock, or the test would be flaky.
	if err := run(strings.NewReader(benchText), &out, "abc1234", "2026-08-08"); err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Commit != "abc1234" || doc.Date != "2026-08-08" {
		t.Fatalf("stamp = (%q, %q), want (abc1234, 2026-08-08)", doc.Commit, doc.Date)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Package != "prophet/internal/sim" || b.Name != "BenchmarkCluster_Iteration" {
		t.Errorf("bench[0] = %q %q, want prophet/internal/sim BenchmarkCluster_Iteration (GOMAXPROCS suffix stripped)", b.Package, b.Name)
	}
	if b.Iterations != 120 || b.NsPerOp != 9876543 || b.BytesPerOp != 123456 || b.AllocsPerOp != 789 {
		t.Errorf("bench[0] numbers = %+v", b)
	}
	scale := doc.Benchmarks[1]
	if scale.MBPerSec != 33.5 || scale.Goroutines != 87 || scale.PeakRSSBytes != 5242880 {
		t.Errorf("custom metrics = %+v", scale)
	}
}

func TestRunEmptyStampOmitted(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(benchText), &out, "", ""); err != nil {
		t.Fatal(err)
	}
	if s := out.String(); strings.Contains(s, `"commit"`) || strings.Contains(s, `"date"`) {
		t.Fatalf("empty stamp fields should be omitted:\n%s", s)
	}
}

func TestRunNoBenchLines(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("PASS\nok\n"), &out, "x", "y"); err == nil {
		t.Fatal("want error on input with no benchmark lines")
	}
}
