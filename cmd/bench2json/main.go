// Command bench2json converts `go test -bench -benchmem` text output on
// stdin into a stable JSON document on stdout, so benchmark numbers can be
// committed and diffed (see `make bench-json` and BENCH_sim.json).
//
// Only benchmark result lines and the `pkg:` headers that scope them are
// consumed; everything else (ok/PASS lines, goos/goarch) is ignored.
//
// -commit and -date stamp the document with the provenance of the numbers
// (the Makefile passes `git rev-parse` and the current UTC date); both are
// plain strings so the output stays deterministic for tests.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Doc is the output document: the provenance stamp plus every parsed
// benchmark line.
type Doc struct {
	// Commit is the git commit the numbers were measured at.
	Commit string `json:"commit,omitempty"`
	// Date is the measurement date (UTC, YYYY-MM-DD).
	Date       string  `json:"date,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one parsed benchmark result line.
type Bench struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Custom b.ReportMetric columns emitted by the scale sweep
	// (BenchmarkEmu_Scale): peak live goroutines and VmHWM during the run.
	Goroutines   int64 `json:"goroutines,omitempty"`
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
}

func main() {
	var (
		commit = flag.String("commit", "", "git commit SHA to stamp the document with")
		date   = flag.String("date", "", "measurement date to stamp the document with (YYYY-MM-DD)")
	)
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *commit, *date); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// run converts bench text on r into the stamped JSON document on w.
func run(r io.Reader, w io.Writer, commit, date string) error {
	benches, err := parse(bufio.NewScanner(r))
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Doc{Commit: commit, Date: date, Benchmarks: benches})
}

func parse(sc *bufio.Scanner) ([]Bench, error) {
	var out []Bench
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// BenchmarkName-P  N  T ns/op  [B B/op  A allocs/op]
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		b := Bench{Package: pkg}
		// Strip the -GOMAXPROCS suffix so names stay stable across machines.
		b.Name = f[0]
		if i := strings.LastIndex(b.Name, "-"); i > 0 {
			if _, err := strconv.Atoi(b.Name[i+1:]); err == nil {
				b.Name = b.Name[:i]
			}
		}
		var err error
		if b.Iterations, err = strconv.ParseInt(f[1], 10, 64); err != nil {
			return nil, fmt.Errorf("iterations in %q: %w", line, err)
		}
		if b.NsPerOp, err = strconv.ParseFloat(f[2], 64); err != nil {
			return nil, fmt.Errorf("ns/op in %q: %w", line, err)
		}
		for i := 4; i+1 < len(f); i += 2 {
			// MB/s (emitted by benches that SetBytes) is a float; the
			// benchmem columns are integers.
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("metric in %q: %w", line, err)
			}
			switch f[i+1] {
			case "MB/s":
				b.MBPerSec = v
			case "B/op":
				b.BytesPerOp = int64(v)
			case "allocs/op":
				b.AllocsPerOp = int64(v)
			case "goroutines":
				b.Goroutines = int64(v)
			case "peak-rss-bytes":
				b.PeakRSSBytes = int64(v)
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}
