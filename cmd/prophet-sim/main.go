// Command prophet-sim runs one simulated DDNN training job and reports its
// training rate, GPU utilization, and network throughput.
//
// Usage:
//
//	prophet-sim -model resnet50 -batch 64 -workers 3 -bandwidth 3000 \
//	            -policy prophet -iters 12
//	prophet-sim -debug-addr 127.0.0.1:6060 -audit   # /metrics + /predict JSON
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"prophet/internal/allreduce"
	"prophet/internal/cluster"
	"prophet/internal/drive"
	"prophet/internal/model"
	"prophet/internal/netsim"
	"prophet/internal/probe"
	"prophet/internal/probe/predict"
	"prophet/internal/profiler"
	"prophet/internal/shard"
	"prophet/internal/stepwise"
	"prophet/internal/strategy"
)

func main() {
	policyUsage := "scheduling strategy: " + strings.Join(strategy.Names(), "|")
	var (
		modelName = flag.String("model", "resnet50", "model: resnet18|resnet50|resnet152|inception-v3|vgg19|alexnet")
		batch     = flag.Int("batch", 64, "per-worker mini-batch size")
		workers   = flag.Int("workers", 3, "number of worker nodes")
		bandwidth = flag.Float64("bandwidth", 3000, "per-worker bandwidth limit in Mbps")
		policy    = flag.String("policy", "", policyUsage)
		sched     = flag.String("scheduler", "prophet", "deprecated alias for -policy")
		iters     = flag.Int("iters", 12, "training iterations")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		partition = flag.Float64("partition", 4, "P3 partition size in MB")
		credit    = flag.Float64("credit", 4, "ByteScheduler credit in MB")
		shards    = flag.Int("shards", 1, "parameter server shards (key-sharded multi-PS)")
		placement = flag.String("placement", "size-balanced", "key→shard placement: round-robin|size-balanced")
		splitNIC  = flag.Bool("split-nic", false, "scale each shard link to 1/shards of the bandwidth (one NIC split across shards) instead of full speed per shard")
		transport = flag.String("transport", "ps", "transport backend: "+strings.Join(drive.BackendNames(), "|"))
		audit     = flag.Bool("audit", false, "score predicted vs actual send windows and print the prediction-audit table (served on /predict with -debug-addr)")
		debugAddr = flag.String("debug-addr", "", "serve live metrics as JSON on this address (e.g. 127.0.0.1:6060/metrics, /predict with -audit) and dump them after the run")
	)
	flag.Parse()

	// Same observability surface as prophet-emu: a probe.Metrics registry
	// behind -debug-addr (nil keeps the unobserved fast path), plus the
	// prediction auditor behind -audit.
	var m *probe.Metrics
	if *debugAddr != "" {
		m = probe.NewMetrics()
	}
	var aud *predict.Auditor
	if *audit {
		aud = predict.NewAuditor(predict.Options{Metrics: m})
	}
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", m.Handler())
		endpoints := "/metrics"
		if aud != nil {
			mux.Handle("/predict", aud.Handler())
			endpoints += " and /predict"
		}
		go http.Serve(ln, mux) //nolint:errcheck — dies with the process
		fmt.Printf("serving %s on http://%s\n", endpoints, ln.Addr())
	}

	base, err := model.ByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wire := model.WithWireFactor(base, 2)
	aggBytes := wire.TotalBytes() / 13
	if aggBytes < 4e6 {
		aggBytes = 4e6
	}
	agg := stepwise.Aggregate(wire, aggBytes, 0)

	// -policy is the canonical spelling; -scheduler survives as an alias.
	name := *sched
	if *policy != "" {
		name = *policy
	}
	canonical, deprecated, err := strategy.Resolve(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if deprecated {
		fmt.Fprintf(os.Stderr, "warning: policy name %q is deprecated; use %q\n", name, canonical)
	}
	opt := cluster.Options{
		Partition: *partition * 1e6,
		Credit:    *credit * 1e6,
		Seed:      *seed,
	}
	if canonical == "prophet" {
		prof, err := profiler.Run(profiler.Config{Model: wire, Batch: *batch, Agg: agg, Seed: *seed * 97})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("profiled %d iterations: %d stepwise blocks, backward %.0f ms, cost %.1f s\n",
			prof.Iterations, len(prof.Blocks), 1e3*prof.Gen[0], prof.WallTime)
		opt.Profile = prof.Profile()
	}
	uplink := func(int) netsim.LinkConfig {
		return netsim.DefaultLinkConfig(netsim.Const(netsim.Goodput(netsim.Mbps(*bandwidth))))
	}

	if *transport != "ps" {
		// Collective path: the strategy schedules ring/tree chunk blocks
		// through the same drive layer; sharding is a PS concept.
		if *shards != 1 {
			fmt.Fprintf(os.Stderr, "prophet-sim: -shards is a PS option (transport %s)\n", *transport)
			os.Exit(1)
		}
		factory, err := cluster.ByNameTransport(canonical, *transport, *workers, wire, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := allreduce.Run(allreduce.Config{
			Model:      wire,
			Batch:      *batch,
			Workers:    *workers,
			Agg:        agg,
			Link:       uplink(0),
			Backend:    *transport,
			Scheduler:  factory,
			Iterations: *iters,
			Seed:       *seed,
			Observer:   observers(m, aud),
			Predict:    *audit,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		warmup := 2
		if *iters <= warmup {
			warmup = 0
		}
		fmt.Printf("%s over %s on %s: batch %d, %d workers, %.0f Mbps/link\n",
			res.SchedulerName, res.Backend, base.Name, *batch, *workers, *bandwidth)
		fmt.Printf("  training rate:   %8.2f samples/s per worker (%8.2f aggregate)\n",
			res.Rate(warmup), res.Rate(warmup)*float64(*workers))
		fmt.Printf("  GPU utilization: %7.1f%%\n", 100*res.GPU.BusyBetween(0, res.Duration)/res.Duration)
		fmt.Printf("  collective ops:  %7d (%.1f per iteration)\n",
			res.Reductions, float64(res.Reductions)/float64(*iters))
		fmt.Printf("  simulated time:  %7.2f s for %d iterations\n", res.Duration, *iters)
		finishObservability(m, aud)
		return
	}

	factory, err := cluster.ByName(canonical, wire, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := cluster.Config{
		Model:          wire,
		Batch:          *batch,
		Workers:        *workers,
		Agg:            agg,
		Uplink:         uplink,
		Scheduler:      factory,
		Iterations:     *iters,
		Seed:           *seed,
		PSShards:       *shards,
		ShardPlacement: shard.Placement(*placement),
		Observer:       observers(m, aud),
		Predict:        *audit,
	}
	if *splitNIC && *shards > 1 {
		cfg.ShardUplink = func(w, _ int) netsim.LinkConfig {
			lc := uplink(w)
			lc.Trace = netsim.Scale(lc.Trace, 1/float64(*shards))
			return lc
		}
		cfg.ShardDownlink = cfg.ShardUplink
	}
	res, err := cluster.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	warmup := 2
	if *iters <= warmup {
		warmup = 0
	}
	fmt.Printf("%s on %s: batch %d, %d workers, %.0f Mbps/worker\n",
		res.SchedulerName, base.Name, *batch, *workers, *bandwidth)
	if res.Shards > 1 {
		mode := "full-speed shard links"
		if *splitNIC {
			mode = "NIC split across shards"
		}
		fmt.Printf("  PS shards:       %7d (%s placement, %s; load imbalance %.3f)\n",
			res.Shards, *placement, mode, res.ShardMap.Imbalance())
	}
	fmt.Printf("  training rate:   %8.2f samples/s per worker (%8.2f aggregate)\n",
		res.Rate(warmup), res.ClusterRate(warmup))
	fmt.Printf("  GPU utilization: %7.1f%%\n", 100*res.GPUUtil(0, warmup))
	fmt.Printf("  uplink payload:  %7.1f MB/s average\n", res.AvgUplinkThroughput(0, warmup)/1e6)
	fmt.Printf("  simulated time:  %7.2f s for %d iterations\n", res.Duration, *iters)
	finishObservability(m, aud)
}

// observers fans the simulation's event stream out to the sinks that were
// requested; nil in, nil out so the unobserved fast path survives.
func observers(m *probe.Metrics, aud *predict.Auditor) probe.Observer {
	var list []probe.Observer
	if o := m.Observer(); o != nil {
		list = append(list, o)
	}
	if aud != nil {
		list = append(list, aud)
	}
	return probe.NewMulti(list...)
}

// finishObservability prints the end-of-run audit table and metrics dump,
// mirroring prophet-emu's epilogue.
func finishObservability(m *probe.Metrics, aud *predict.Auditor) {
	if aud != nil {
		aud.Flush()
		fmt.Println("  prediction audit (planned vs observed send windows):")
		aud.Report().Render(os.Stdout)
	}
	if m != nil {
		fmt.Println("  metrics:")
		if err := m.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
