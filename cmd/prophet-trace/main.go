// Command prophet-trace runs one training job — simulated or live-emulated —
// and exports its timelines: a Chrome trace-event JSON, a CSV of GPU
// utilization and network throughput, a CSV of per-gradient transfers, and a
// stall-attribution report decomposing each gradient's completion time into
// generation / priority-wait / bandwidth-wait / transmit / ack (Fig. 11).
//
// Usage:
//
//	prophet-trace -model resnet50 -policy prophet -out trace.json
//	prophet-trace -policy bytescheduler -csv timeline.csv -transfers log.csv
//	prophet-trace -path emu -policy prophet -out live.json -attrib report.txt
//	prophet-trace -policy prophet -audit audit.txt   # predicted vs actual
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prophet/internal/allreduce"
	"prophet/internal/cluster"
	"prophet/internal/drive"
	"prophet/internal/emu"
	"prophet/internal/model"
	"prophet/internal/netsim"
	"prophet/internal/nn"
	"prophet/internal/probe"
	"prophet/internal/probe/attrib"
	"prophet/internal/probe/predict"
	"prophet/internal/profiler"
	"prophet/internal/stepwise"
	"prophet/internal/strategy"
	"prophet/internal/trace"
)

func main() {
	policyUsage := "scheduling strategy: " + strings.Join(strategy.Names(), "|")
	var (
		path      = flag.String("path", "sim", "execution path: sim (discrete-event simulator) | emu (live emulation)")
		modelName = flag.String("model", "resnet50", "model (sim path)")
		batch     = flag.Int("batch", 64, "batch size")
		workers   = flag.Int("workers", 3, "workers")
		bandwidth = flag.Float64("bandwidth", 3000, "per-worker Mbps")
		policy    = flag.String("policy", "", policyUsage)
		sched     = flag.String("scheduler", "prophet", "deprecated alias for -policy")
		iters     = flag.Int("iters", 6, "iterations")
		seed      = flag.Uint64("seed", 1, "seed")
		hidden    = flag.Int("hidden", 64, "hidden layer width (emu path)")
		mux       = flag.Bool("mux", false, "emu path: share one multiplexed connection per shard across all workers")
		topK      = flag.Int("topk", 3, "blocking gradients listed per iteration in the attribution report")
		transport = flag.String("transport", "ps", "transport backend: "+strings.Join(drive.BackendNames(), "|")+" (both paths; ring/tree run the collective)")
		outJSON   = flag.String("out", "", "Chrome trace JSON output path")
		outCSV    = flag.String("csv", "", "timeline CSV output path (GPU util + throughput)")
		outXfer   = flag.String("transfers", "", "per-gradient transfer CSV output path")
		outAttrib = flag.String("attrib", "", "stall-attribution report output path")
		outAudit  = flag.String("audit", "", "prediction-audit report output path (predicted vs actual windows, drift scores)")
	)
	flag.Parse()
	if *outJSON == "" && *outCSV == "" && *outXfer == "" && *outAttrib == "" && *outAudit == "" {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -out, -csv, -transfers, -attrib, or -audit")
		os.Exit(1)
	}

	// -policy is the canonical spelling; -scheduler survives as an alias.
	name := *sched
	if *policy != "" {
		name = *policy
	}
	canonical, deprecated, err := strategy.Resolve(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if deprecated {
		fmt.Fprintf(os.Stderr, "warning: policy name %q is deprecated; use %q\n", name, canonical)
	}

	switch *path {
	case "sim":
		runSim(simConfig{
			model: *modelName, batch: *batch, workers: *workers,
			bandwidth: *bandwidth, policy: canonical, iters: *iters, seed: *seed,
			transport: *transport,
		}, outputs{json: *outJSON, csv: *outCSV, xfer: *outXfer, attrib: *outAttrib, audit: *outAudit, topK: *topK})
	case "emu":
		runEmu(emuConfig{
			batch: *batch, workers: *workers, hidden: *hidden,
			bandwidth: *bandwidth, policy: canonical, iters: *iters, seed: *seed,
			mux: *mux, transport: *transport,
		}, outputs{json: *outJSON, csv: *outCSV, xfer: *outXfer, attrib: *outAttrib, audit: *outAudit, topK: *topK})
	default:
		fmt.Fprintf(os.Stderr, "unknown -path %q: want sim or emu\n", *path)
		os.Exit(1)
	}
}

type simConfig struct {
	model          string
	batch, workers int
	bandwidth      float64
	policy         string
	iters          int
	seed           uint64
	transport      string
}

type emuConfig struct {
	batch, workers, hidden int
	bandwidth              float64
	policy                 string
	iters                  int
	seed                   uint64
	mux                    bool
	transport              string
}

type outputs struct {
	json, csv, xfer, attrib, audit string
	topK                           int
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func writeFile(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// runSim drives the discrete-event simulator. The Chrome trace and CSV come
// from the simulator's own link recordings; the attribution report comes
// from the probe recorder, the same component the live path uses.
func runSim(cfg simConfig, out outputs) {
	base, err := model.ByName(cfg.model)
	if err != nil {
		fatal(err)
	}
	wire := model.WithWireFactor(base, 2)
	aggBytes := wire.TotalBytes() / 13
	if aggBytes < 4e6 {
		aggBytes = 4e6
	}
	agg := stepwise.Aggregate(wire, aggBytes, 0)

	opt := cluster.Options{Partition: 4e6, Credit: 4e6, Seed: cfg.seed}
	if cfg.policy == "prophet" {
		prof, err := profiler.Run(profiler.Config{Model: wire, Batch: cfg.batch, Agg: agg, Seed: cfg.seed * 97})
		if err != nil {
			fatal(err)
		}
		opt.Profile = prof.Profile()
	}
	if cfg.transport != "" && cfg.transport != "ps" {
		runSimCollective(cfg, wire, agg, opt, out)
		return
	}
	factory, err := cluster.ByName(cfg.policy, wire, opt)
	if err != nil {
		fatal(err)
	}

	rec := probe.NewSpanRecorder()
	res, err := cluster.Run(cluster.Config{
		Model:   wire,
		Batch:   cfg.batch,
		Workers: cfg.workers,
		Agg:     agg,
		Uplink: func(int) netsim.LinkConfig {
			return netsim.DefaultLinkConfig(netsim.Const(netsim.Goodput(netsim.Mbps(cfg.bandwidth))))
		},
		Scheduler:    factory,
		Iterations:   cfg.iters,
		Seed:         cfg.seed,
		RecordLinks:  true,
		LogTransfers: true,
		Observer:     rec,
		Predict:      out.audit != "",
	})
	if err != nil {
		fatal(err)
	}

	if out.json != "" {
		writeFile(out.json, func(f *os.File) error {
			return trace.WriteChromeTrace(f, trace.ChromeTrace(res))
		})
	}
	if out.csv != "" {
		writeFile(out.csv, func(f *os.File) error {
			const bin = 0.05
			gpu := res.GPU[0].Timeline(0, res.Duration, bin)
			up := res.Up[0].Timeline(0, res.Duration, bin)
			down := res.Down[0].Timeline(0, res.Duration, bin)
			return trace.WriteCSV(f, bin,
				[]string{"time_s", "gpu_util", "uplink_Bps", "downlink_Bps"}, gpu, up, down)
		})
	}
	if out.xfer != "" {
		writeFile(out.xfer, func(f *os.File) error {
			return trace.WriteTransferCSV(f, res.Transfers)
		})
	}
	writeAttrib(rec, out)
	writeAudit(rec, out)
}

// runSimCollective drives the collective path (ring/tree over the drive
// layer). Every export comes from the probe recorder, exactly like the live
// path — the collective transmitter feeds the same event stream.
func runSimCollective(cfg simConfig, wire *model.Model, agg stepwise.Buckets, opt cluster.Options, out outputs) {
	factory, err := cluster.ByNameTransport(cfg.policy, cfg.transport, cfg.workers, wire, opt)
	if err != nil {
		fatal(err)
	}
	rec := probe.NewSpanRecorder()
	res, err := allreduce.Run(allreduce.Config{
		Model:      wire,
		Batch:      cfg.batch,
		Workers:    cfg.workers,
		Agg:        agg,
		Link:       netsim.DefaultLinkConfig(netsim.Const(netsim.Goodput(netsim.Mbps(cfg.bandwidth)))),
		Backend:    cfg.transport,
		Scheduler:  factory,
		Iterations: cfg.iters,
		Seed:       cfg.seed,
		Observer:   rec,
		Predict:    out.audit != "",
	})
	if err != nil {
		fatal(err)
	}
	if out.json != "" {
		writeFile(out.json, func(f *os.File) error {
			return trace.WriteChromeTrace(f, trace.ChromeTraceSpans(rec))
		})
	}
	if out.csv != "" {
		writeFile(out.csv, func(f *os.File) error {
			const bin = 0.05
			gpu := res.GPU.Timeline(0, res.Duration, bin)
			rate := rec.Rate(0)
			if rate == nil {
				return fmt.Errorf("no transfers recorded")
			}
			return trace.WriteCSV(f, bin,
				[]string{"time_s", "gpu_util", "uplink_Bps"}, gpu, rate.Timeline(0, res.Duration, bin))
		})
	}
	if out.xfer != "" {
		writeFile(out.xfer, func(f *os.File) error {
			return trace.WriteTransferCSV(f, rec.Transfers())
		})
	}
	writeAttrib(rec, out)
	writeAudit(rec, out)
}

// runEmu drives the live emulation. Every export comes from the probe
// recorder: the same event stream both executors emit.
func runEmu(cfg emuConfig, out outputs) {
	rec := probe.NewSpanRecorder()
	rec.SetIterationHint(cfg.iters)
	// ≤ one completing send per tensor per iteration; the MLP below has
	// 2×(layers−1) = 6 tensors.
	rec.SetVolumeHint(cfg.iters*6, cfg.workers)
	// -bandwidth stays in Mbps for CLI symmetry with the sim path; the
	// emulation's shaper wants bytes/sec.
	res, err := emu.Run(emu.Config{
		Workers:              cfg.workers,
		Layers:               []int{16, cfg.hidden, cfg.hidden, 4},
		Dataset:              nn.Blobs(2048, 16, 4, cfg.seed),
		Batch:                cfg.batch,
		Iterations:           cfg.iters,
		LR:                   0.1,
		Policy:               cfg.policy,
		BandwidthBytesPerSec: cfg.bandwidth * 1e6 / 8,
		Seed:                 cfg.seed,
		Mux:                  cfg.mux,
		Transport:            cfg.transport,
		Observer:             rec,
		Predict:              out.audit != "",
	})
	if err != nil {
		fatal(err)
	}
	_ = res

	if out.json != "" {
		writeFile(out.json, func(f *os.File) error {
			return trace.WriteChromeTrace(f, trace.ChromeTraceSpans(rec))
		})
	}
	if out.csv != "" {
		writeFile(out.csv, func(f *os.File) error {
			const bin = 0.005
			end := 0.0
			if log := rec.Iterations(0); log != nil && log.Count() > 0 {
				end = log.Ends[log.Count()-1]
			}
			rate := rec.Rate(0)
			if rate == nil {
				return fmt.Errorf("no transfers recorded for worker 0")
			}
			return trace.WriteCSV(f, bin,
				[]string{"time_s", "uplink_Bps"}, rate.Timeline(0, end, bin))
		})
	}
	if out.xfer != "" {
		writeFile(out.xfer, func(f *os.File) error {
			return trace.WriteTransferCSV(f, rec.Transfers())
		})
	}
	writeAttrib(rec, out)
	writeAudit(rec, out)
}

func writeAttrib(rec *probe.SpanRecorder, out outputs) {
	if out.attrib == "" {
		return
	}
	writeFile(out.attrib, func(f *os.File) error {
		attrib.Analyze(rec, out.topK).Render(f)
		return nil
	})
}

// writeAudit replays the recorded stream through the prediction auditor and
// renders the predicted-vs-actual table. On the emu path the planned windows
// come from the engines' dispatch-time projections; on the sim paths from
// the drive layer's cost model.
func writeAudit(rec *probe.SpanRecorder, out outputs) {
	if out.audit == "" {
		return
	}
	writeFile(out.audit, func(f *os.File) error {
		rep := predict.Audit(rec, predict.Options{})
		if rep.Planned == 0 {
			return fmt.Errorf("no planned windows recorded: prediction not armed on this path")
		}
		rep.Render(f)
		return nil
	})
}
