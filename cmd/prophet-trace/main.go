// Command prophet-trace runs one simulated training job and exports its
// timelines: a Chrome trace-event JSON of GPU/link activity, a CSV of GPU
// utilization and network throughput, and a CSV of per-gradient transfers.
//
// Usage:
//
//	prophet-trace -model resnet50 -scheduler prophet -out trace.json
//	prophet-trace -scheduler bytescheduler -csv timeline.csv -transfers log.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"prophet/internal/cluster"
	"prophet/internal/model"
	"prophet/internal/netsim"
	"prophet/internal/profiler"
	"prophet/internal/stepwise"
	"prophet/internal/trace"
)

func main() {
	var (
		modelName = flag.String("model", "resnet50", "model")
		batch     = flag.Int("batch", 64, "batch size")
		workers   = flag.Int("workers", 3, "workers")
		bandwidth = flag.Float64("bandwidth", 3000, "per-worker Mbps")
		sched     = flag.String("scheduler", "prophet", "fifo|p3|bytescheduler|prophet")
		iters     = flag.Int("iters", 6, "iterations")
		seed      = flag.Uint64("seed", 1, "seed")
		outJSON   = flag.String("out", "", "Chrome trace JSON output path")
		outCSV    = flag.String("csv", "", "timeline CSV output path (GPU util + throughput)")
		outXfer   = flag.String("transfers", "", "per-gradient transfer CSV output path")
	)
	flag.Parse()
	if *outJSON == "" && *outCSV == "" && *outXfer == "" {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -out, -csv, or -transfers")
		os.Exit(1)
	}

	base, err := model.ByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wire := model.WithWireFactor(base, 2)
	aggBytes := wire.TotalBytes() / 13
	if aggBytes < 4e6 {
		aggBytes = 4e6
	}
	agg := stepwise.Aggregate(wire, aggBytes, 0)

	var factory cluster.SchedulerFactory
	switch *sched {
	case "fifo":
		factory = cluster.FIFOFactory(wire)
	case "p3":
		factory = cluster.P3Factory(wire, 4e6)
	case "bytescheduler":
		factory = cluster.ByteSchedulerFactory(wire, 4e6)
	case "prophet":
		prof, err := profiler.Run(profiler.Config{Model: wire, Batch: *batch, Agg: agg, Seed: *seed * 97})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		factory = cluster.ProphetFactory(prof.Profile())
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *sched)
		os.Exit(1)
	}

	res, err := cluster.Run(cluster.Config{
		Model:   wire,
		Batch:   *batch,
		Workers: *workers,
		Agg:     agg,
		Uplink: func(int) netsim.LinkConfig {
			return netsim.DefaultLinkConfig(netsim.Const(netsim.Goodput(netsim.Mbps(*bandwidth))))
		},
		Scheduler:    factory,
		Iterations:   *iters,
		Seed:         *seed,
		RecordLinks:  true,
		LogTransfers: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	writeFile := func(path string, fn func(*os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}

	if *outJSON != "" {
		writeFile(*outJSON, func(f *os.File) error {
			return trace.WriteChromeTrace(f, trace.ChromeTrace(res))
		})
	}
	if *outCSV != "" {
		writeFile(*outCSV, func(f *os.File) error {
			const bin = 0.05
			gpu := res.GPU[0].Timeline(0, res.Duration, bin)
			up := res.Up[0].Timeline(0, res.Duration, bin)
			down := res.Down[0].Timeline(0, res.Duration, bin)
			return trace.WriteCSV(f, bin,
				[]string{"time_s", "gpu_util", "uplink_Bps", "downlink_Bps"}, gpu, up, down)
		})
	}
	if *outXfer != "" {
		writeFile(*outXfer, func(f *os.File) error {
			return trace.WriteTransferCSV(f, res.Transfers)
		})
	}
}
