// Command prophet-profile runs Prophet's Training Job Profiler for a model
// and prints the discovered stepwise pattern: the gradient blocks, their
// release times, and the transfer windows A(i) Algorithm 1 will use.
//
// Usage:
//
//	prophet-profile -model resnet50 -batch 64 -profile-iters 50
package main

import (
	"flag"
	"fmt"
	"os"

	"prophet/internal/core"
	"prophet/internal/model"
	"prophet/internal/netsim"
	"prophet/internal/profiler"
	"prophet/internal/stepwise"
)

func main() {
	var (
		modelName = flag.String("model", "resnet50", "model to profile")
		batch     = flag.Int("batch", 64, "per-worker mini-batch size")
		iters     = flag.Int("profile-iters", 50, "profiling iterations")
		bandwidth = flag.Float64("bandwidth", 3000, "bandwidth in Mbps for the example plan")
		seed      = flag.Uint64("seed", 1, "seed")
		showPlan  = flag.Bool("plan", false, "also print the Algorithm 1 block plan at -bandwidth")
	)
	flag.Parse()

	base, err := model.ByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wire := model.WithWireFactor(base, 2)
	aggBytes := wire.TotalBytes() / 13
	if aggBytes < 4e6 {
		aggBytes = 4e6
	}
	agg := stepwise.Aggregate(wire, aggBytes, 0)
	prof, err := profiler.Run(profiler.Config{
		Model: wire, Batch: *batch, Agg: agg, Iterations: *iters, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s (batch %d): %d gradient tensors, %.1f MB on the wire per direction\n",
		base.Name, *batch, wire.NumGradients(), wire.TotalBytes()/1e6)
	fmt.Printf("profiled %d iterations in %.1f s of simulated training\n", prof.Iterations, prof.WallTime)
	fmt.Printf("backward propagation: %.1f ms; stepwise pattern: %d blocks\n\n", 1e3*prof.Gen[0], len(prof.Blocks))
	fmt.Printf("%-28s %10s %10s %10s\n", "block", "release", "bytes", "window")
	for i, b := range prof.Blocks {
		var bytes float64
		for g := b.Lo; g <= b.Hi; g++ {
			bytes += prof.Bytes[g]
		}
		window := "open"
		if i+1 < len(prof.Blocks) {
			window = fmt.Sprintf("%7.1f ms", 1e3*(prof.Blocks[i+1].Release-b.Release))
		}
		fmt.Printf("{gradient %3d - gradient %3d} %7.1f ms %7.1f MB %10s\n",
			b.Lo, b.Hi, 1e3*b.Release, bytes/1e6, window)
	}

	if *showPlan {
		bw := netsim.Goodput(netsim.Mbps(*bandwidth))
		plan, err := core.Assemble(prof.Profile(), core.Config{Bandwidth: bw})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nAlgorithm 1 plan at %.0f Mbps (%d units, %d backward blocks):\n",
			*bandwidth, len(plan.Units), plan.NumBlocks())
		for i, u := range plan.Units {
			grads := u.Grads()
			fmt.Printf("  %3d %-8s t=%7.1f ms %7.2f MB  g%d..g%d (%d gradients)\n",
				i, u.Phase, 1e3*u.PlannedStart, u.Bytes/1e6, grads[0], grads[len(grads)-1], len(grads))
		}
	}
}
