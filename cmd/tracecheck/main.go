// Command tracecheck validates a Chrome trace-event JSON file: the
// trace-smoke make target runs prophet-trace on both execution paths and
// pipes the results through this gate, so a broken exporter fails CI
// instead of producing a file the trace viewer silently rejects.
//
// Usage:
//
//	tracecheck trace.json [more.json ...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// event mirrors trace.Event but keeps pointer fields so missing keys are
// distinguishable from zero values.
type event struct {
	Name *string  `json:"name"`
	Ph   *string  `json:"ph"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
}

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !json.Valid(data) {
		return fmt.Errorf("%s: invalid JSON", path)
	}
	var events []event
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("%s: not a trace-event array: %w", path, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: empty trace", path)
	}
	for i, e := range events {
		switch {
		case e.Name == nil || *e.Name == "":
			return fmt.Errorf("%s: event %d: missing name", path, i)
		case e.Ph == nil || *e.Ph == "":
			return fmt.Errorf("%s: event %d: missing ph", path, i)
		case e.Ts == nil:
			return fmt.Errorf("%s: event %d: missing ts", path, i)
		case e.Dur == nil:
			return fmt.Errorf("%s: event %d: missing dur", path, i)
		case e.Pid == nil || e.Tid == nil:
			return fmt.Errorf("%s: event %d: missing pid/tid", path, i)
		case *e.Ts < 0 || *e.Dur < 0:
			return fmt.Errorf("%s: event %d: negative ts/dur", path, i)
		}
	}
	fmt.Printf("%s: %d events ok\n", path, len(events))
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json> [...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
