// Command prophet-bench regenerates the paper's evaluation: every table and
// figure, printed in the same rows/series the paper reports, alongside the
// paper's own numbers where stated.
//
// Usage:
//
//	prophet-bench                 # run everything
//	prophet-bench -only fig8      # one experiment
//	prophet-bench -list           # list experiments
//	prophet-bench -quick          # trimmed sweeps
//	prophet-bench -iters 20       # longer runs (steadier numbers)
//	prophet-bench -j 8            # run experiments on 8 workers
//
// Output is deterministic: results are printed in registry order with
// byte-identical content at any -j value, because every simulation owns its
// engine and seed and results are collected by index.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"prophet/internal/experiments"
	"prophet/internal/experiments/runner"
	"prophet/internal/profiler"
)

func main() {
	var (
		only  = flag.String("only", "", "run a single experiment by id (e.g. fig8, table2)")
		list  = flag.Bool("list", false, "list experiments and exit")
		quick = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
		iters = flag.Int("iters", 12, "simulated iterations per run")
		seed  = flag.Uint64("seed", 1, "simulation seed")
		jobs  = flag.Int("j", runner.DefaultWorkers(), "worker goroutines for experiments and their sweeps (1 = serial)")
	)
	flag.Parse()

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-18s %-10s %s\n", s.ID, s.Paper, s.Desc)
		}
		return
	}

	cfg := experiments.Config{Iterations: *iters, Seed: *seed, Quick: *quick, Jobs: *jobs}
	specs := experiments.All()
	if *only != "" {
		spec, err := experiments.ByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs = []experiments.Spec{spec}
	}

	// Each experiment renders into its own buffer so experiments can run
	// concurrently while output stays in registry order. The job function
	// never returns an error: a failure is part of the outcome, so one bad
	// experiment does not cancel its siblings.
	type outcome struct {
		out bytes.Buffer
		dur time.Duration
		err error
	}
	totalStart := time.Now()
	outcomes, _ := runner.Map(*jobs, specs, func(_ int, spec experiments.Spec) (*outcome, error) {
		o := &outcome{}
		start := time.Now()
		res, err := spec.Run(cfg)
		o.dur = time.Since(start)
		if err != nil {
			o.err = err
			return o, nil
		}
		res.Render(&o.out)
		return o, nil
	})
	total := time.Since(totalStart)

	failed := 0
	for i, spec := range specs {
		if i > 0 {
			fmt.Println()
		}
		o := outcomes[i]
		if o.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "%s: %v\n", spec.ID, o.err)
			fmt.Printf("  [%s FAILED after %.1fs]\n", spec.ID, o.dur.Seconds())
			continue
		}
		os.Stdout.Write(o.out.Bytes())
		fmt.Printf("  [%s, %.1fs wall]\n", spec.ID, o.dur.Seconds())
	}

	hits, misses := profiler.Stats()
	fmt.Printf("\n%d experiments in %.1fs wall (-j %d); profile cache %d hits / %d misses\n",
		len(specs), total.Seconds(), *jobs, hits, misses)
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
