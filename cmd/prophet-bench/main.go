// Command prophet-bench regenerates the paper's evaluation: every table and
// figure, printed in the same rows/series the paper reports, alongside the
// paper's own numbers where stated.
//
// Usage:
//
//	prophet-bench                 # run everything
//	prophet-bench -only fig8      # one experiment
//	prophet-bench -list           # list experiments
//	prophet-bench -quick          # trimmed sweeps
//	prophet-bench -iters 20       # longer runs (steadier numbers)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"prophet/internal/experiments"
)

func main() {
	var (
		only  = flag.String("only", "", "run a single experiment by id (e.g. fig8, table2)")
		list  = flag.Bool("list", false, "list experiments and exit")
		quick = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
		iters = flag.Int("iters", 12, "simulated iterations per run")
		seed  = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-18s %-10s %s\n", s.ID, s.Paper, s.Desc)
		}
		return
	}

	cfg := experiments.Config{Iterations: *iters, Seed: *seed, Quick: *quick}
	specs := experiments.All()
	if *only != "" {
		spec, err := experiments.ByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs = []experiments.Spec{spec}
	}

	for i, spec := range specs {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		res, err := spec.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", spec.ID, err)
			os.Exit(1)
		}
		res.Render(os.Stdout)
		fmt.Printf("  [%s, %.1fs wall]\n", spec.ID, time.Since(start).Seconds())
	}
}
