// Command prophet-emu runs the live emulation: real data-parallel SGD on a
// real MLP over a real concurrent parameter server with rate-shaped
// connections, under a chosen push schedule. Losses are identical across
// schedules (deterministic synchronous aggregation); tensor-0 latency and
// wall time differ.
//
// Usage:
//
//	prophet-emu -workers 3 -policy prophet -bandwidth 4e6 -iters 15
//	prophet-emu -debug-addr 127.0.0.1:6060 -iters 200   # live /metrics JSON
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"prophet/internal/emu"
	"prophet/internal/nn"
	"prophet/internal/probe"
	"prophet/internal/shard"
	"prophet/internal/strategy"
)

func main() {
	var (
		workers   = flag.Int("workers", 3, "data-parallel workers")
		policy    = flag.String("policy", "prophet", "scheduling strategy: "+strings.Join(strategy.Names(), "|"))
		bandwidth = flag.Float64("bandwidth", 4e6, "per-worker link shaping in bytes/sec (0 = unshaped)")
		iters     = flag.Int("iters", 15, "SGD iterations")
		batch     = flag.Int("batch", 64, "per-worker batch size")
		hidden    = flag.Int("hidden", 128, "hidden layer width")
		seed      = flag.Uint64("seed", 21, "seed")
		shards    = flag.Int("shards", 1, "parameter server shards (key-sharded multi-PS)")
		placement = flag.String("placement", "size-balanced", "key→shard placement: round-robin|size-balanced")
		mux       = flag.Bool("mux", false, "multiplex all workers onto one shared connection per shard (use for -workers ≥ 100)")
		debugAddr = flag.String("debug-addr", "", "serve live metrics as JSON on this address (e.g. 127.0.0.1:6060/metrics) and dump them after the run")
	)
	flag.Parse()

	if _, deprecated, err := strategy.Resolve(*policy); err == nil && deprecated {
		fmt.Fprintf(os.Stderr, "warning: -policy %s is deprecated; use its canonical name (see -help)\n", *policy)
	}

	// The registry exists only when requested: a nil *probe.Metrics keeps
	// the emulation on its unobserved fast path.
	var m *probe.Metrics
	if *debugAddr != "" {
		m = probe.NewMetrics()
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", m.Handler())
		go http.Serve(ln, mux) //nolint:errcheck — dies with the process
		fmt.Printf("serving metrics on http://%s/metrics\n", ln.Addr())
	}

	ds := nn.Blobs(2048, 16, 4, *seed)
	res, err := emu.Run(emu.Config{
		Workers:              *workers,
		Layers:               []int{16, *hidden, *hidden, 4},
		Dataset:              ds,
		Batch:                *batch,
		Iterations:           *iters,
		LR:                   0.1,
		Policy:               *policy,
		BandwidthBytesPerSec: *bandwidth,
		Seed:                 *seed,
		Shards:               *shards,
		ShardPlacement:       shard.Placement(*placement),
		Mux:                  *mux,
		Metrics:              m,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	transport := "dedicated conns"
	if *mux {
		transport = "muxed conns"
	}
	fmt.Printf("policy %s: %d workers, %d iterations, %.1f MB/s links, %d PS shard(s), %s\n",
		*policy, *workers, *iters, *bandwidth/1e6, *shards, transport)
	fmt.Printf("  loss %.4f → %.4f, accuracy %.1f%%\n",
		res.Losses[0], res.Losses[len(res.Losses)-1], 100*res.FinalAccuracy)
	var rtt float64
	for _, d := range res.Tensor0RoundTrip {
		rtt += d.Seconds()
	}
	rtt /= float64(len(res.Tensor0RoundTrip))
	fmt.Printf("  tensor-0 round trip %.1f ms average, wall time %s\n",
		1e3*rtt, res.Duration.Round(1e6))
	fmt.Printf("  push order (last iteration): %v\n", res.PushOrder)

	if m != nil {
		fmt.Println("  metrics:")
		if err := m.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
