// Command prophet-emu runs the live emulation: real data-parallel SGD on a
// real MLP over a real concurrent wire — a sharded parameter server
// (dedicated or multiplexed connections) or a peer-to-peer ring/tree
// collective — under a chosen push schedule. Losses are identical across
// schedules (deterministic synchronous aggregation); tensor-0 latency and
// wall time differ.
//
// Usage:
//
//	prophet-emu -workers 3 -policy prophet -bandwidth 4e6 -iters 15
//	prophet-emu -workers 4 -transport ring -attrib          # live collective
//	prophet-emu -debug-addr 127.0.0.1:6060 -iters 200   # live /metrics JSON
//	prophet-emu -audit -debug-addr 127.0.0.1:6060       # live /predict audit
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"prophet/internal/drive"
	"prophet/internal/emu"
	"prophet/internal/nn"
	"prophet/internal/probe"
	"prophet/internal/probe/attrib"
	"prophet/internal/probe/predict"
	"prophet/internal/shard"
	"prophet/internal/strategy"
)

func main() {
	var (
		workers   = flag.Int("workers", 3, "data-parallel workers")
		policy    = flag.String("policy", "prophet", "scheduling strategy: "+strings.Join(strategy.Names(), "|"))
		bandwidth = flag.Float64("bandwidth", 4e6, "per-worker link shaping in bytes/sec (0 = unshaped)")
		iters     = flag.Int("iters", 15, "SGD iterations")
		batch     = flag.Int("batch", 64, "per-worker batch size")
		hidden    = flag.Int("hidden", 128, "hidden layer width")
		seed      = flag.Uint64("seed", 21, "seed")
		shards    = flag.Int("shards", 1, "parameter server shards (key-sharded multi-PS)")
		placement = flag.String("placement", "size-balanced", "key→shard placement: round-robin|size-balanced")
		mux       = flag.Bool("mux", false, "multiplex all workers onto one shared connection per shard (use for -workers ≥ 100)")
		transport = flag.String("transport", "ps", "wire transport: "+strings.Join(drive.BackendNames(), "|")+" (ring/tree replace the PS with a peer-to-peer collective)")
		report    = flag.Bool("attrib", false, "print the stall-attribution report (generation/priority/bandwidth/transmit/ack decomposition)")
		audit     = flag.Bool("audit", false, "score predicted vs actual send windows and print the prediction-audit table (served live on /predict with -debug-addr)")
		debugAddr = flag.String("debug-addr", "", "serve live metrics as JSON on this address (e.g. 127.0.0.1:6060/metrics, /predict with -audit) and dump them after the run")
	)
	flag.Parse()

	if _, deprecated, err := strategy.Resolve(*policy); err == nil && deprecated {
		fmt.Fprintf(os.Stderr, "warning: -policy %s is deprecated; use its canonical name (see -help)\n", *policy)
	}

	// The registry and auditor exist only when requested: nil keeps the
	// emulation on its unobserved fast path.
	var m *probe.Metrics
	if *debugAddr != "" {
		m = probe.NewMetrics()
	}
	var aud *predict.Auditor
	if *audit {
		aud = predict.NewAuditor(predict.Options{Metrics: m})
	}
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", m.Handler())
		endpoints := "/metrics"
		if aud != nil {
			mux.Handle("/predict", aud.Handler())
			endpoints += " and /predict"
		}
		go http.Serve(ln, mux) //nolint:errcheck — dies with the process
		fmt.Printf("serving %s on http://%s\n", endpoints, ln.Addr())
	}

	var rec *probe.SpanRecorder
	if *report {
		rec = probe.NewSpanRecorder()
		rec.SetIterationHint(*iters)
		// ≤ one completing send per tensor per iteration; the MLP below has
		// 2×(layers−1) = 6 tensors.
		rec.SetVolumeHint(*iters*6, *workers)
	}

	ds := nn.Blobs(2048, 16, 4, *seed)
	res, err := emu.Run(emu.Config{
		Workers:              *workers,
		Layers:               []int{16, *hidden, *hidden, 4},
		Dataset:              ds,
		Batch:                *batch,
		Iterations:           *iters,
		LR:                   0.1,
		Policy:               *policy,
		BandwidthBytesPerSec: *bandwidth,
		Seed:                 *seed,
		Shards:               *shards,
		ShardPlacement:       shard.Placement(*placement),
		Mux:                  *mux,
		Transport:            *transport,
		Metrics:              m,
		Observer:             observers(rec, aud),
		Predict:              *audit,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	wire := "PS, dedicated conns"
	switch {
	case *transport != "" && *transport != "ps":
		wire = "live " + *transport + " collective"
	case *mux:
		wire = "PS, muxed conns"
	}
	fmt.Printf("policy %s: %d workers, %d iterations, %.1f MB/s links, %d PS shard(s), %s\n",
		*policy, *workers, *iters, *bandwidth/1e6, *shards, wire)
	fmt.Printf("  loss %.4f → %.4f, accuracy %.1f%%\n",
		res.Losses[0], res.Losses[len(res.Losses)-1], 100*res.FinalAccuracy)
	var rtt float64
	for _, d := range res.Tensor0RoundTrip {
		rtt += d.Seconds()
	}
	rtt /= float64(len(res.Tensor0RoundTrip))
	fmt.Printf("  tensor-0 round trip %.1f ms average, wall time %s\n",
		1e3*rtt, res.Duration.Round(1e6))
	fmt.Printf("  push order (last iteration): %v\n", res.PushOrder)

	if rec != nil {
		fmt.Println("  stall attribution (a zero ack column marks collective ops: no pull leg):")
		attrib.Analyze(rec, 3).Render(os.Stdout)
	}

	if aud != nil {
		aud.Flush()
		fmt.Println("  prediction audit (planned vs observed send windows):")
		aud.Report().Render(os.Stdout)
	}

	if m != nil {
		fmt.Println("  metrics:")
		if err := m.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// observers fans the emulation's event stream out to whichever sinks were
// requested, keeping the unobserved fast path intact: typed-nil pointers
// must reach the emulation as a nil interface, not a non-nil interface
// wrapping a nil pointer.
func observers(rec *probe.SpanRecorder, aud *predict.Auditor) probe.Observer {
	var list []probe.Observer
	if rec != nil {
		list = append(list, rec)
	}
	if aud != nil {
		list = append(list, aud)
	}
	return probe.NewMulti(list...)
}
